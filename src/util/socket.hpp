// TCP plumbing of the multi-host campaign supervisor.
//
// The coordinator of a distributed campaign listens here; remote workers
// connect here. Everything is written for the hostile-reality contract the
// rest of the runtime already follows (util/errors.hpp taxonomy):
//
//  * tcp_connect()      nonblocking connect with a wall-clock deadline —
//                       a black-holed SYN fails after `deadline_ms`, never
//                       hangs the worker's reconnect loop;
//  * tcp_listen()       bind+listen with SO_REUSEADDR (campaign restarts
//                       must not wait out TIME_WAIT); port 0 picks an
//                       ephemeral port, recovered via local_port();
//  * SocketChannel      the ByteChannel over a connected socket: sends with
//                       MSG_NOSIGNAL (a vanished peer is EPIPE, never a
//                       process-killing SIGPIPE), restarts EINTR, and sets
//                       TCP_NODELAY (frames are small and latency-bound);
//  * tcp_socketpair()   a loopback-free AF_UNIX pair for transport tests.
//
// Everything returns errno-style codes or -1+error string; nothing here
// throws or aborts — a refused connection is campaign weather, not a bug.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/byte_channel.hpp"

namespace motsim::netio {

/// Splits "host:port" (e.g. "127.0.0.1:9000", "0.0.0.0:0"). False with
/// `error` set on a missing colon, empty host, or a port outside [0,65535].
bool parse_hostport(std::string_view spec, std::string& host,
                    std::uint16_t& port, std::string& error);

/// Creates a listening TCP socket bound to host:port (port 0 = ephemeral).
/// Returns the fd, or -1 with `error` describing the failing step.
int tcp_listen(const std::string& host, std::uint16_t port,
               std::string& error, int backlog = 16);

/// The locally bound port of a socket (resolves port-0 binds). 0 on error.
std::uint16_t local_port(int fd);

/// Accepts one pending connection (EINTR-safe). Returns the connected fd,
/// or -1 with err = EAGAIN/EWOULDBLOCK when nothing is pending on a
/// nonblocking listener, or the accept errno otherwise.
int tcp_accept(int listen_fd, int& err);

/// Connects to host:port with a wall-clock deadline: the socket is put in
/// nonblocking mode, the connect is polled to completion, and SO_ERROR is
/// checked — so both a refused and a black-holed peer fail within
/// `deadline_ms`. Returns a connected fd (left nonblocking=false), or -1
/// with `error` set.
int tcp_connect(const std::string& host, std::uint16_t port,
                std::uint64_t deadline_ms, std::string& error);

/// ByteChannel over a connected TCP (or AF_UNIX stream) socket. Owns the
/// fd. Writes use MSG_NOSIGNAL; EINTR restarts internally.
class SocketChannel final : public ByteChannel {
 public:
  explicit SocketChannel(int fd) : fd_(fd) {}
  ~SocketChannel() override { close(); }
  SocketChannel(const SocketChannel&) = delete;
  SocketChannel& operator=(const SocketChannel&) = delete;

  ssize_t read(void* buf, std::size_t count, int& err) override;
  ssize_t write(const void* buf, std::size_t count, int& err) override;
  int poll_fd() const override { return fd_; }
  void close() override;

  /// Marks the socket nonblocking (coordinator-side readers). 0 or errno.
  int set_nonblocking();

 private:
  int fd_;
};

/// A connected AF_UNIX stream pair wrapped as two SocketChannels — the
/// in-process stand-in for a real link in transport unit tests. Returns 0
/// or errno.
int tcp_socketpair(std::unique_ptr<SocketChannel>& a,
                   std::unique_ptr<SocketChannel>& b);

}  // namespace motsim::netio
