// POSIX process primitives for the multi-process campaign supervisor.
//
// The supervisor (faultsim/supervisor.hpp) isolates fault-simulation shards
// in forked worker processes so that a segfault, OOM kill, or runaway
// allocation in one fault's MOT expansion can never take down the whole
// campaign. This header holds the process-level plumbing that design needs,
// kept free of any fault-simulation knowledge so it is testable on its own:
//
//  * spawn()             fork a child wired to the parent by two pipes
//                        (commands down, results up), with the child ends of
//                        every *other* worker's pipes closed so one worker
//                        holding a sibling's descriptors cannot delay that
//                        sibling's EOF-based death detection;
//  * frame protocol      length-prefixed frames (1-byte type, 4-byte
//                        little-endian payload length, payload) — a torn or
//                        short frame is detectable, never silently merged
//                        with its neighbour;
//  * FrameReader         incremental reassembly for the coordinator's
//                        non-blocking poll loop and the worker's
//                        between-faults command check;
//  * wait helpers        waitpid wrappers plus describe_wait_status(), which
//                        turns an exit status into the one-token diagnostic
//                        ("signal_9_Killed") recorded against faults that
//                        kill their workers.
//
// Everything here restarts on EINTR explicitly — the campaign CLI installs
// signal handlers without SA_RESTART on purpose, so every blocking call in
// this file must tolerate interruption.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "util/byte_channel.hpp"

namespace motsim::subprocess {

/// Marks `fd` non-blocking (coordinator read ends). Returns 0 or errno.
int set_nonblocking(int fd);

/// One direction of a parent<->child channel.
struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
};

/// Creates a pipe. Returns 0 or errno.
int make_pipe(Pipe& p);

/// Frame header: type byte + 32-bit little-endian payload length.
inline constexpr std::size_t kFrameHeaderBytes = 5;
/// Upper bound on a frame payload. Far above any journal record or shard
/// assignment; a length field beyond it means the stream is corrupt (or the
/// peer is speaking a different protocol) and the reader reports that
/// instead of trying to allocate the advertised amount.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

/// Writes one complete frame, restarting on EINTR and tolerating partial
/// writes. Returns 0 or errno (EPIPE when the reader died). Not atomic
/// across concurrent writers — callers serialize writes to one channel.
int write_frame(netio::ByteChannel& chan, std::uint8_t type,
                std::string_view payload);

/// Same, over a raw fd (the fork/pipe transport's historical entry point).
int write_frame(int fd, std::uint8_t type, std::string_view payload);

/// Incremental frame reassembly over a (typically non-blocking) transport.
/// Works over any ByteChannel — pipes, TCP sockets, or the fault-injecting
/// test shim; the fd constructor borrows the descriptor without owning it.
///
/// Hostile-peer hardening (the reader also faces real network peers now):
///  * a frame header advertising more than kMaxFramePayload marks the
///    stream corrupt before any allocation of the advertised size happens;
///  * the internal buffer never grows past one maximum frame — a peer
///    flooding bytes without ever completing a frame is detected as corrupt
///    instead of growing the buffer without bound (feed() stops reading
///    until the caller drains complete frames with next()).
class FrameReader {
 public:
  explicit FrameReader(int fd)
      : owned_(std::make_unique<netio::FdChannel>(fd, /*own=*/false)),
        chan_(owned_.get()) {}
  explicit FrameReader(netio::ByteChannel& chan) : chan_(&chan) {}

  enum class FeedStatus : std::uint8_t {
    Data,        ///< appended at least one byte (or the buffer is full)
    WouldBlock,  ///< no data available right now (EAGAIN)
    Eof,         ///< peer closed its end
    Error,       ///< read failed; errno in `err`
  };

  /// One channel read into the buffer (EINTR restarts internally — an
  /// interrupted read is retried, never reported as peer death).
  FeedStatus feed(int& err);

  /// Extracts the next complete frame. False when the buffer holds only a
  /// partial frame (feed more) or the stream is corrupt (check corrupt()).
  bool next(std::uint8_t& type, std::string& payload);

  /// True once a frame header advertised an impossible payload length. The
  /// stream is unrecoverable; the owner should treat the peer as dead.
  bool corrupt() const { return corrupt_; }

  int fd() const { return chan_->poll_fd(); }

 private:
  std::unique_ptr<netio::ByteChannel> owned_;  // fd constructor only
  netio::ByteChannel* chan_;
  std::string buf_;
  bool corrupt_ = false;
};

/// Forks a child that runs `child_main(command_fd, result_fd)` and _exits
/// with its return value — the child never returns into the caller's stack
/// (no destructors, no test-framework teardown, no double-flushed stdio).
/// Every fd in `close_in_child` (sibling workers' pipe ends, typically) is
/// closed in the child before child_main runs. On success fills `out` with
/// the parent-side ends and returns 0; on failure returns errno.
struct ChildHandles {
  pid_t pid = -1;
  int command_fd = -1;  ///< parent writes commands here
  int result_fd = -1;   ///< parent reads results here
};
int spawn(const std::function<int(int command_fd, int result_fd)>& child_main,
          std::span<const int> close_in_child, ChildHandles& out);

/// waitpid(WNOHANG) wrapper: 1 = reaped into `status`, 0 = still running,
/// -1 = error (e.g. ECHILD). Restarts on EINTR.
int try_wait(pid_t pid, int& status);

/// Blocking waitpid. Returns 0 on success (status filled) or errno.
int wait_blocking(pid_t pid, int& status);

/// True when the status is a normal exit with code 0.
bool exited_cleanly(int status);

/// One-token description of a wait status, journal-safe by construction:
/// "exit_0", "signal_9_Killed", "signal_11_Segmentation_fault", ...
std::string describe_wait_status(int status);

/// Milliseconds of steady-clock time — the supervisor's single time source
/// for heartbeat and deadline arithmetic.
std::uint64_t steady_now_ms();

}  // namespace motsim::subprocess
