// Coverage-directed deterministic test-sequence generation.
//
// The paper's final experiment simulates the deterministic sequence HITEC
// [9] generated for s5378. HITEC itself is not available, so this module
// provides a greedy simulation-guided generator in its spirit: candidate
// subsequences are proposed at random, fault-simulated (with the fast
// parallel-fault simulator), and kept only when they detect so-far-
// undetected faults; generation stops after a run of fruitless candidates
// or when the length budget is reached. The result is a compact sequence
// with deterministic-ATPG-like coverage structure — exactly what the
// experiment needs to contrast with plain random patterns.
#pragma once

#include <vector>

#include "fault/fault.hpp"
#include "sim/test_sequence.hpp"
#include "util/rng.hpp"

namespace motsim {

struct HitecLikeParams {
  std::size_t max_length = 400;        ///< total sequence budget
  std::size_t segment_length = 8;      ///< length of each candidate burst
  std::size_t candidates_per_round = 8;///< candidates tried per extension
  std::size_t patience = 6;            ///< fruitless rounds before stopping
  std::uint64_t seed = 97;
};

struct HitecLikeResult {
  TestSequence sequence;
  std::size_t detected = 0;  ///< conventionally detected by the sequence
};

HitecLikeResult generate_hitec_like(const Circuit& c,
                                    const std::vector<Fault>& faults,
                                    const HitecLikeParams& params);

}  // namespace motsim
