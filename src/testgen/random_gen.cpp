#include "testgen/random_gen.hpp"

namespace motsim {

TestSequence random_sequence(std::size_t num_inputs, std::size_t length, Rng& rng) {
  TestSequence t(num_inputs, length);
  for (std::size_t u = 0; u < length; ++u) {
    for (std::size_t k = 0; k < num_inputs; ++k) {
      t.set(u, k, rng.next_bool() ? Val::One : Val::Zero);
    }
  }
  return t;
}

TestSequence random_sequence_with_x(std::size_t num_inputs, std::size_t length,
                                    double x_prob, Rng& rng) {
  TestSequence t(num_inputs, length);
  for (std::size_t u = 0; u < length; ++u) {
    for (std::size_t k = 0; k < num_inputs; ++k) {
      const Val v = rng.next_bool(x_prob)
                        ? Val::X
                        : (rng.next_bool() ? Val::One : Val::Zero);
      t.set(u, k, v);
    }
  }
  return t;
}

}  // namespace motsim
