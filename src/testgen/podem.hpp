// Single-time-frame deterministic test generation: PODEM over the
// combinational network, with the present state as a fixed (partially
// unknown) side input.
//
// This is the combinational engine every classic sequential ATPG (HITEC [9]
// included) is built around. Given the machine's current three-valued state
// and a target fault, it searches for a primary-input assignment that
// excites the fault and propagates its effect to a primary output *within
// the frame*, by simulating the good and faulty machines side by side:
// decisions are made only on primary inputs (PODEM's defining property),
// objectives are chosen from fault excitation and the D-frontier, and a
// bounded number of backtracks keeps the search predictable.
//
// The full sequential generator (deterministic_atpg.hpp) drives this engine
// frame by frame. Patterns returned here carry a guarantee the tests check:
// simulating the frame from the given state produces a specified,
// conflicting value pair on some primary output.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "fault/fault_view.hpp"
#include "sim/seq_sim.hpp"

namespace motsim {

class FramePodem {
 public:
  explicit FramePodem(const Circuit& c);

  struct Stats {
    std::size_t backtracks = 0;
    std::size_t decisions = 0;
  };

  /// Searches for an input pattern (X where indifferent) that makes some
  /// primary output differ between the good and faulty machines in this
  /// frame, with present state fixed to `state` (three-valued; X state bits
  /// are genuinely unknown and cannot be assigned). Returns nullopt when the
  /// backtrack budget is exhausted or the fault is untestable in this frame.
  std::optional<std::vector<Val>> generate(std::span<const Val> state,
                                           const Fault& f,
                                           std::size_t max_backtracks = 500,
                                           Stats* stats = nullptr);

 private:
  /// Re-simulates both machines from the current input assignment.
  void imply(const FaultView& fv);

  /// True when a primary output already carries a specified difference.
  bool detected_at_po() const;

  /// True when the fault effect can still possibly reach an output: either
  /// a PO differs, or some gate has a specified good/faulty difference on a
  /// line whose forward cone still contains X values (relaxed D-frontier).
  bool effect_possible(const FaultView& fv) const;

  /// Picks the next objective (line, value-in-good-machine) — fault
  /// excitation first, then D-frontier side inputs — and backtraces it to
  /// an unassigned primary input. Returns nullopt when no objective maps to
  /// a free input.
  std::optional<std::pair<std::size_t, Val>> next_decision(const FaultView& fv,
                                                           const Fault& f);

  const Circuit* circuit_;
  std::vector<Val> inputs_;       // current PI assignment (X = unassigned)
  std::vector<Val> state_;        // fixed present state
  FrameVals good_;
  FrameVals faulty_;
};

}  // namespace motsim
