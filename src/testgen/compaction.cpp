#include "testgen/compaction.hpp"

#include "faultsim/session.hpp"

namespace motsim {

namespace {

std::size_t coverage_of(const Circuit& c, const TestSequence& t,
                        const std::vector<Fault>& faults) {
  ParallelFaultSession session(c, faults);
  session.apply(t);
  return session.detected_count();
}

/// `t` without patterns [from, from+count).
TestSequence without_block(const TestSequence& t, std::size_t from,
                           std::size_t count) {
  TestSequence out(t.num_inputs(), 0);
  for (std::size_t u = 0; u < t.length(); ++u) {
    if (u >= from && u < from + count) continue;
    out.append(t.pattern(u));
  }
  return out;
}

}  // namespace

CompactionResult compact_sequence(const Circuit& c, const TestSequence& test,
                                  const std::vector<Fault>& faults,
                                  const CompactionParams& params) {
  CompactionResult result;
  result.original_length = test.length();
  result.sequence = test;
  result.detected = coverage_of(c, test, faults);

  std::size_t block = params.initial_block > 0
                          ? params.initial_block
                          : std::max<std::size_t>(1, test.length() / 4);
  while (block >= 1) {
    for (std::size_t pass = 0; pass < params.passes_per_size; ++pass) {
      // Scan back-to-front: deleting late patterns does not change what the
      // earlier prefix detects, so tail deletions succeed most often.
      std::size_t from = result.sequence.length();
      while (from > 0) {
        from = from > block ? from - block : 0;
        if (result.sequence.length() <= block) break;
        const TestSequence trial = without_block(result.sequence, from, block);
        ++result.trials;
        if (coverage_of(c, trial, faults) >= result.detected) {
          result.sequence = trial;
        }
      }
    }
    if (block == 1) break;
    block /= 2;
  }
  return result;
}

}  // namespace motsim
