// Random test sequences (the stimulus of the paper's Table 2 experiments).
#pragma once

#include "sim/test_sequence.hpp"
#include "util/rng.hpp"

namespace motsim {

/// Fully specified sequence of `length` uniform random patterns.
TestSequence random_sequence(std::size_t num_inputs, std::size_t length, Rng& rng);

/// Random sequence where each bit is X with probability `x_prob` — used by
/// property tests to exercise partially specified stimulus.
TestSequence random_sequence_with_x(std::size_t num_inputs, std::size_t length,
                                    double x_prob, Rng& rng);

}  // namespace motsim
