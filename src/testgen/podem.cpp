#include "testgen/podem.hpp"

#include <cassert>

namespace motsim {

FramePodem::FramePodem(const Circuit& c) : circuit_(&c) {}

void FramePodem::imply(const FaultView& fv) {
  const Circuit& c = *circuit_;
  const SequentialSimulator sim(c);
  const FaultView fault_free(c);
  good_.assign(c.num_gates(), Val::X);
  faulty_.assign(c.num_gates(), Val::X);
  for (std::size_t i = 0; i < c.num_inputs(); ++i) {
    good_[c.inputs()[i]] = inputs_[i];
    faulty_[c.inputs()[i]] = fv.input_value(i, inputs_[i]);
  }
  for (std::size_t j = 0; j < c.num_dffs(); ++j) {
    good_[c.dffs()[j]] = state_[j];
    faulty_[c.dffs()[j]] = fv.present_state(j, state_[j]);
  }
  sim.eval_frame(good_, fault_free);
  sim.eval_frame(faulty_, fv);
}

bool FramePodem::detected_at_po() const {
  for (GateId po : circuit_->outputs()) {
    if (conflicts(good_[po], faulty_[po])) return true;
  }
  return false;
}

bool FramePodem::effect_possible(const FaultView& fv) const {
  (void)fv;
  if (detected_at_po()) return true;
  const Circuit& c = *circuit_;
  // Relaxed D-frontier: a specified good/faulty difference on a line with a
  // reader that is still unsettled can, in principle, move forward. A fault
  // that is not excited yet is handled by the objective step instead.
  bool any_difference = false;
  for (GateId l = 0; l < c.num_gates(); ++l) {
    if (!conflicts(good_[l], faulty_[l])) continue;
    any_difference = true;
    for (GateId reader : c.gate(l).fanouts) {
      if (c.gate(reader).type == GateType::Dff) continue;  // next frame only
      if (!is_specified(good_[reader]) || !is_specified(faulty_[reader])) {
        return true;
      }
    }
  }
  return !any_difference;  // not excited yet: excitation objective decides
}

std::optional<std::pair<std::size_t, Val>> FramePodem::next_decision(
    const FaultView& fv, const Fault& f) {
  const Circuit& c = *circuit_;

  // Backtrace an objective (line, value wanted in the good machine) to an
  // unassigned primary input.
  auto backtrace = [&](GateId line, Val v) -> std::optional<std::pair<std::size_t, Val>> {
    for (int hops = 0; hops < 10000; ++hops) {
      const Gate& g = c.gate(line);
      if (g.type == GateType::Input) {
        const auto idx = [&] {
          for (std::size_t i = 0; i < c.num_inputs(); ++i) {
            if (c.inputs()[i] == line) return i;
          }
          return c.num_inputs();
        }();
        if (idx == c.num_inputs() || is_specified(inputs_[idx])) return std::nullopt;
        return std::make_pair(idx, v);
      }
      if (g.type == GateType::Dff || g.type == GateType::Const0 ||
          g.type == GateType::Const1) {
        return std::nullopt;  // present state / constants are not assignable
      }
      // Needed input value for this gate to (help) produce v.
      Val want = v;
      if (g.type == GateType::Not || g.type == GateType::Nand ||
          g.type == GateType::Nor || g.type == GateType::Xnor) {
        want = v_not(v);
      }
      if (has_controlling_value(g.type)) {
        const Val ctrl = v_of(controlling_value(g.type));
        const Val out_ctrl = is_inverting(g.type) ? v_not(ctrl) : ctrl;
        // Controlled output: one controlling input suffices; otherwise all
        // inputs need the non-controlling value — either way one X input at
        // a time (PODEM re-derives the next objective after implication).
        want = v == out_ctrl ? ctrl : v_not(ctrl);
      } else if (g.type == GateType::Xor || g.type == GateType::Xnor) {
        want = Val::One;  // any specified value moves an XOR; bias to 1
      }
      GateId next = kNoGate;
      for (GateId in : g.fanins) {
        if (!is_specified(good_[in])) {
          next = in;
          break;
        }
      }
      if (next == kNoGate) return std::nullopt;
      line = next;
      v = want;
    }
    return std::nullopt;
  };

  // Objective 1: excite the fault (good value opposite the stuck value at
  // the fault site).
  const GateId site = f.pin == kOutputPin
                          ? f.gate
                          : c.gate(f.gate).fanins[static_cast<std::size_t>(f.pin)];
  const Val good_site = good_[site];
  if (!is_specified(good_site)) {
    return backtrace(site, v_not(f.stuck));
  }
  if (good_site == f.stuck && f.pin == kOutputPin) {
    return std::nullopt;  // unexcitable this frame
  }

  // Objective 2: extend the D-frontier — find a gate with a difference on
  // an input and an unsettled output; ask for a side input value.
  for (GateId g : c.topo_order()) {
    if (is_specified(good_[g]) && is_specified(faulty_[g])) continue;
    const Gate& gate = c.gate(g);
    bool has_difference = false;
    for (GateId in : gate.fanins) {
      if (conflicts(good_[in], faulty_[in])) {
        has_difference = true;
        break;
      }
    }
    if (!has_difference) continue;
    const Val side = has_controlling_value(gate.type)
                         ? v_not(v_of(controlling_value(gate.type)))
                         : Val::One;
    for (GateId in : gate.fanins) {
      if (is_specified(good_[in])) continue;
      if (auto d = backtrace(in, side)) return d;
    }
  }
  // Excitation of pin faults whose site is specified opposite: nothing to
  // decide here; or no objective reachable from free inputs.
  (void)fv;
  return std::nullopt;
}

std::optional<std::vector<Val>> FramePodem::generate(std::span<const Val> state,
                                                     const Fault& f,
                                                     std::size_t max_backtracks,
                                                     Stats* stats) {
  const Circuit& c = *circuit_;
  assert(state.size() == c.num_dffs());
  const FaultView fv(c, f);
  inputs_.assign(c.num_inputs(), Val::X);
  state_.assign(state.begin(), state.end());

  struct Decision {
    std::size_t input;
    Val value;
    bool flipped;
  };
  std::vector<Decision> stack;
  std::size_t backtracks = 0;

  for (;;) {
    imply(fv);
    if (detected_at_po()) {
      if (stats != nullptr) {
        stats->backtracks = backtracks;
        stats->decisions = stack.size();
      }
      return inputs_;
    }

    bool need_backtrack = !effect_possible(fv);
    std::optional<std::pair<std::size_t, Val>> decision;
    if (!need_backtrack) {
      decision = next_decision(fv, f);
      need_backtrack = !decision.has_value();
    }

    if (!need_backtrack) {
      inputs_[decision->first] = decision->second;
      stack.push_back(Decision{decision->first, decision->second, false});
      continue;
    }

    // Backtrack: flip the deepest unflipped decision.
    for (;;) {
      if (stack.empty() || backtracks >= max_backtracks) {
        if (stats != nullptr) {
          stats->backtracks = backtracks;
          stats->decisions = 0;
        }
        return std::nullopt;
      }
      Decision& top = stack.back();
      if (!top.flipped) {
        ++backtracks;
        top.flipped = true;
        top.value = v_not(top.value);
        inputs_[top.input] = top.value;
        break;
      }
      inputs_[top.input] = Val::X;
      stack.pop_back();
    }
  }
}

}  // namespace motsim
