#include "testgen/hitec_like.hpp"

#include "faultsim/session.hpp"
#include "testgen/random_gen.hpp"

namespace motsim {

HitecLikeResult generate_hitec_like(const Circuit& c,
                                    const std::vector<Fault>& faults,
                                    const HitecLikeParams& params) {
  Rng rng(params.seed);
  TestSequence best(c.num_inputs(), 0);
  // Incremental session: candidate segments are evaluated on forks of the
  // accepted prefix, so each candidate costs only its own length.
  ParallelFaultSession accepted(c, faults);
  std::size_t fruitless = 0;

  while (best.length() < params.max_length && fruitless < params.patience) {
    TestSequence best_ext;
    std::size_t best_ext_cov = accepted.detected_count();
    ParallelFaultSession best_session = accepted;
    bool improved = false;
    for (std::size_t cand = 0; cand < params.candidates_per_round; ++cand) {
      const std::size_t seg =
          std::min(params.segment_length, params.max_length - best.length());
      if (seg == 0) break;
      const TestSequence segment = random_sequence(c.num_inputs(), seg, rng);
      ParallelFaultSession trial = accepted;
      trial.apply(segment);
      if (trial.detected_count() > best_ext_cov) {
        best_ext_cov = trial.detected_count();
        best_ext = segment;
        best_session = std::move(trial);
        improved = true;
      }
    }
    if (improved) {
      best.append_all(best_ext);
      accepted = std::move(best_session);
      fruitless = 0;
    } else {
      ++fruitless;
    }
  }

  // Deterministic generators without progress still need a non-empty
  // sequence for the experiment to run.
  if (best.length() == 0) {
    best = random_sequence(c.num_inputs(), params.segment_length, rng);
    ParallelFaultSession session(c, faults);
    session.apply(best);
    return HitecLikeResult{std::move(best), session.detected_count()};
  }
  return HitecLikeResult{std::move(best), accepted.detected_count()};
}

}  // namespace motsim
