// Static test-sequence compaction by block deletion.
//
// Given a test sequence and a fault list, repeatedly tries to delete blocks
// of patterns (halving the block size down to single patterns) and keeps a
// deletion whenever the conventional fault coverage does not drop. This is
// the classic sequence-compaction loop from the literature around [8]
// (Rudnick's thesis); it pairs naturally with the MOT machinery because a
// compacted sequence leaves more X-rich, harder faults for the multiple
// observation time procedures to resolve — the situation of the paper's
// final (HITEC) experiment.
#pragma once

#include <vector>

#include "fault/fault.hpp"
#include "sim/test_sequence.hpp"

namespace motsim {

struct CompactionParams {
  /// Initial deletion block size; halves until 1. 0 = length/4.
  std::size_t initial_block = 0;
  /// Passes over the sequence per block size.
  std::size_t passes_per_size = 1;
};

struct CompactionResult {
  TestSequence sequence;
  std::size_t original_length = 0;
  std::size_t detected = 0;  ///< coverage of both original and result
  std::size_t trials = 0;    ///< deletion attempts simulated
};

/// Never reduces conventional coverage (post-condition, asserted by tests).
CompactionResult compact_sequence(const Circuit& c, const TestSequence& test,
                                  const std::vector<Fault>& faults,
                                  const CompactionParams& params = {});

}  // namespace motsim
