// Frame-by-frame deterministic test generation built on the PODEM engine —
// the architecture of classic sequential generators (HITEC's combinational
// core with simulation-based state tracking).
//
// The generator walks forward in time: it keeps the good machine's
// three-valued state, targets one undetected fault at a time with FramePodem
// (present state fixed), fills indifferent inputs randomly, and verifies
// progress with the incremental parallel fault simulator (fault dropping).
// When no targeted pattern can be derived it falls back to a random pattern,
// so the sequence never stalls.
#pragma once

#include <vector>

#include "fault/fault.hpp"
#include "sim/test_sequence.hpp"
#include "util/rng.hpp"

namespace motsim {

struct AtpgParams {
  std::size_t max_length = 200;       ///< sequence budget (frames)
  std::size_t max_backtracks = 300;   ///< PODEM budget per target
  std::size_t stall_limit = 20;       ///< frames without progress -> stop
  std::uint64_t seed = 1;             ///< random fill / fallback patterns
};

struct AtpgResult {
  TestSequence sequence;
  std::size_t detected = 0;          ///< conventional coverage of `sequence`
  std::size_t targeted_patterns = 0; ///< frames produced by PODEM
  std::size_t random_patterns = 0;   ///< fallback frames
};

AtpgResult generate_deterministic(const Circuit& c,
                                  const std::vector<Fault>& faults,
                                  const AtpgParams& params = {});

}  // namespace motsim
