#include "testgen/deterministic_atpg.hpp"

#include "fault/fault_view.hpp"
#include "faultsim/session.hpp"
#include "sim/seq_sim.hpp"
#include "testgen/podem.hpp"

namespace motsim {

AtpgResult generate_deterministic(const Circuit& c,
                                  const std::vector<Fault>& faults,
                                  const AtpgParams& params) {
  AtpgResult result;
  result.sequence = TestSequence(c.num_inputs(), 0);
  Rng rng(params.seed);

  ParallelFaultSession session(c, faults);
  // Good-machine state, advanced frame by frame.
  std::vector<Val> state(c.num_dffs(), Val::X);
  const SequentialSimulator sim(c);
  const FaultView fault_free(c);
  FrameVals frame(c.num_gates(), Val::X);
  FramePodem podem(c);

  std::size_t next_target = 0;
  std::size_t stalled = 0;

  while (result.sequence.length() < params.max_length &&
         session.detected_count() < faults.size() &&
         stalled < params.stall_limit) {
    // Pick the next undetected fault (round robin).
    std::size_t target = faults.size();
    for (std::size_t probe = 0; probe < faults.size(); ++probe) {
      const std::size_t k = (next_target + probe) % faults.size();
      if (!session.is_detected(k)) {
        target = k;
        break;
      }
    }
    if (target == faults.size()) break;
    next_target = target + 1;

    std::vector<Val> pattern(c.num_inputs(), Val::X);
    const auto derived =
        podem.generate(state, faults[target], params.max_backtracks);
    if (derived.has_value()) {
      pattern = *derived;
      ++result.targeted_patterns;
    } else {
      ++result.random_patterns;
    }
    for (Val& v : pattern) {
      if (!is_specified(v)) v = rng.next_bool() ? Val::One : Val::Zero;
    }

    // Advance the good machine and the fault universe by one frame.
    TestSequence step(c.num_inputs(), 0);
    step.append(pattern);
    const std::size_t before = session.detected_count();
    session.apply(step);
    result.sequence.append(std::move(pattern));
    stalled = session.detected_count() > before ? 0 : stalled + 1;

    for (std::size_t i = 0; i < c.num_inputs(); ++i) {
      frame[c.inputs()[i]] = result.sequence.at(result.sequence.length() - 1, i);
    }
    for (std::size_t j = 0; j < c.num_dffs(); ++j) frame[c.dffs()[j]] = state[j];
    sim.eval_frame(frame, fault_free);
    for (std::size_t j = 0; j < c.num_dffs(); ++j) {
      state[j] = frame[c.dff_input(j)];
    }
  }

  result.detected = session.detected_count();
  return result;
}

}  // namespace motsim
