// Parallel-fault conventional simulation.
//
// Packs up to 63 faulty machines (plus the fault-free machine in slot 63)
// into the two-word PVal encoding and simulates them simultaneously, one
// bitwise gate evaluation serving all slots. Per-slot fault effects are
// patched in scalar form after each bulk gate evaluation — cheap because a
// group contains at most 63 faults.
//
// Semantically identical to ConventionalFaultSimulator (asserted by the
// integration tests); used as the fast pre-pass that classifies the whole
// fault universe before the per-fault MOT procedures run.
#pragma once

#include <vector>

#include "faultsim/conventional.hpp"
#include "logic/pval.hpp"

namespace motsim {

class ParallelFaultSimulator {
 public:
  explicit ParallelFaultSimulator(const Circuit& c) : circuit_(&c) {}

  /// Detection + condition-(C) classification for every fault.
  ///
  /// `num_threads` spreads the 63-fault PVal groups over a thread pool with
  /// one GroupScratch per worker (0 = all hardware threads, 1 = serial).
  /// Every group writes a disjoint slice of the outcome vector, so the
  /// result is identical for every thread count; with 1 the pool is never
  /// constructed and the code path is exactly the historical serial loop.
  std::vector<ConvOutcome> run(const TestSequence& test,
                               const SeqTrace& fault_free,
                               const std::vector<Fault>& faults,
                               std::size_t num_threads = 1) const;

 private:
  /// Reusable per-run buffers (a fresh allocation per group dominated the
  /// profile on the largest circuits).
  struct GroupScratch {
    std::vector<std::vector<unsigned>> stem_faults;  // per gate
    std::vector<std::vector<unsigned>> pin_faults;   // per gate
    std::vector<GateId> touched;                     // gates with entries
    std::vector<PVal> vals;
    std::vector<PVal> state;
  };

  void run_group(const TestSequence& test, const SeqTrace& fault_free,
                 const Fault* faults, std::size_t n_faults,
                 ConvOutcome* outcomes, GroupScratch& scratch) const;

  const Circuit* circuit_;
};

}  // namespace motsim
