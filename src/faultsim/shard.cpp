#include "faultsim/shard.hpp"

#include <algorithm>
#include <charconv>

namespace motsim::shard {

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::Assign: return "assign";
    case MsgType::Shutdown: return "shutdown";
    case MsgType::FaultStart: return "fault-start";
    case MsgType::FaultResult: return "fault-result";
    case MsgType::GroupDone: return "group-done";
    case MsgType::Heartbeat: return "heartbeat";
  }
  return "?";
}

std::string encode_assign(std::span<const std::size_t> fault_indices) {
  std::string out;
  for (const std::size_t k : fault_indices) {
    if (!out.empty()) out.push_back(' ');
    out += std::to_string(k);
  }
  return out;
}

namespace {

bool parse_size(std::string_view token, std::size_t& out) {
  if (token.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

}  // namespace

bool decode_assign(std::string_view payload, std::vector<std::size_t>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < payload.size()) {
    const std::size_t space = payload.find(' ', pos);
    const std::size_t end = space == std::string_view::npos ? payload.size() : space;
    std::size_t value = 0;
    if (!parse_size(payload.substr(pos, end - pos), value)) return false;
    out.push_back(value);
    pos = end == payload.size() ? end : end + 1;
    // A trailing or doubled separator would produce an empty token, which
    // parse_size rejects on the next round.
    if (pos == payload.size() && space != std::string_view::npos) return false;
  }
  return !out.empty();
}

std::string encode_fault_start(std::size_t fault_index) {
  return std::to_string(fault_index);
}

bool decode_fault_start(std::string_view payload, std::size_t& out) {
  return parse_size(payload, out);
}

std::vector<std::vector<std::size_t>> plan_fault_groups(
    std::span<const std::size_t> fault_indices, std::size_t workers,
    std::size_t group_size) {
  std::vector<std::vector<std::size_t>> groups;
  if (fault_indices.empty()) return groups;
  if (group_size == 0) {
    // ~8 claimable groups per worker keeps stealing granular without
    // drowning the pipe in assignment round trips; MOT cost per fault is
    // wildly skewed, so small groups matter more than batching.
    const std::size_t w = std::max<std::size_t>(workers, 1);
    group_size = std::clamp<std::size_t>(fault_indices.size() / (w * 8),
                                         std::size_t{1}, std::size_t{32});
  }
  for (std::size_t begin = 0; begin < fault_indices.size();
       begin += group_size) {
    const std::size_t end =
        std::min(begin + group_size, fault_indices.size());
    groups.emplace_back(fault_indices.begin() + begin,
                        fault_indices.begin() + end);
  }
  return groups;
}

bool chaos_should_kill(std::uint64_t seed, std::size_t fault_index,
                       std::size_t incarnation, std::uint64_t permille) {
  if (permille == 0) return false;
  std::uint64_t z = seed ^ (0x9e3779b97f4a7c15ull * (fault_index + 1)) ^
                    (0xc2b2ae3d27d4eb4full * (incarnation + 1));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z % 1000 < permille;
}

}  // namespace motsim::shard
