#include "faultsim/shard.hpp"

#include <algorithm>
#include <charconv>

namespace motsim::shard {

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::Assign: return "assign";
    case MsgType::Shutdown: return "shutdown";
    case MsgType::FaultStart: return "fault-start";
    case MsgType::FaultResult: return "fault-result";
    case MsgType::GroupDone: return "group-done";
    case MsgType::Heartbeat: return "heartbeat";
    case MsgType::Hello: return "hello";
    case MsgType::Welcome: return "welcome";
    case MsgType::Reject: return "reject";
  }
  return "?";
}

std::string encode_assign(std::span<const std::size_t> fault_indices) {
  std::string out;
  for (const std::size_t k : fault_indices) {
    if (!out.empty()) out.push_back(' ');
    out += std::to_string(k);
  }
  return out;
}

namespace {

bool parse_size(std::string_view token, std::size_t& out) {
  if (token.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

}  // namespace

bool decode_assign(std::string_view payload, std::vector<std::size_t>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < payload.size()) {
    const std::size_t space = payload.find(' ', pos);
    const std::size_t end = space == std::string_view::npos ? payload.size() : space;
    std::size_t value = 0;
    if (!parse_size(payload.substr(pos, end - pos), value)) return false;
    out.push_back(value);
    pos = end == payload.size() ? end : end + 1;
    // A trailing or doubled separator would produce an empty token, which
    // parse_size rejects on the next round.
    if (pos == payload.size() && space != std::string_view::npos) return false;
  }
  return !out.empty();
}

std::string encode_fault_start(std::size_t fault_index) {
  return std::to_string(fault_index);
}

bool decode_fault_start(std::string_view payload, std::size_t& out) {
  return parse_size(payload, out);
}

namespace {

bool parse_u64(std::string_view token, std::uint64_t& out) {
  if (token.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

/// Splits on single spaces; false on empty tokens (doubled/leading/trailing
/// separators) or the wrong token count.
bool split_tokens(std::string_view payload, std::size_t count,
                  std::vector<std::string_view>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos <= payload.size()) {
    const std::size_t space = payload.find(' ', pos);
    const std::size_t end =
        space == std::string_view::npos ? payload.size() : space;
    if (end == pos) return false;
    out.push_back(payload.substr(pos, end - pos));
    if (space == std::string_view::npos) break;
    pos = space + 1;
    if (pos > payload.size()) return false;
  }
  return out.size() == count;
}

}  // namespace

std::string encode_hello(const JournalMeta& meta) {
  std::string out;
  out += std::to_string(meta.num_faults);
  out += ' ';
  out += std::to_string(meta.test_length);
  out += ' ';
  out += std::to_string(meta.test_hash);
  out += ' ';
  out += std::to_string(meta.options_hash);
  out += ' ';
  out += meta.baseline ? '1' : '0';
  out += ' ';
  out += meta.circuit;
  return out;
}

bool decode_hello(std::string_view payload, JournalMeta& out) {
  std::vector<std::string_view> tokens;
  if (!split_tokens(payload, 6, tokens)) return false;
  JournalMeta meta;
  if (!parse_u64(tokens[0], meta.num_faults)) return false;
  if (!parse_u64(tokens[1], meta.test_length)) return false;
  if (!parse_u64(tokens[2], meta.test_hash)) return false;
  if (!parse_u64(tokens[3], meta.options_hash)) return false;
  if (tokens[4] == "1") {
    meta.baseline = true;
  } else if (tokens[4] == "0") {
    meta.baseline = false;
  } else {
    return false;
  }
  meta.circuit = std::string(tokens[5]);
  out = meta;
  return true;
}

std::string encode_welcome(const WelcomeInfo& info) {
  return std::to_string(info.slot) + " " + std::to_string(info.incarnation) +
         " " + std::to_string(info.heartbeat_period_ms);
}

bool decode_welcome(std::string_view payload, WelcomeInfo& out) {
  std::vector<std::string_view> tokens;
  if (!split_tokens(payload, 3, tokens)) return false;
  WelcomeInfo info;
  if (!parse_size(tokens[0], info.slot)) return false;
  if (!parse_size(tokens[1], info.incarnation)) return false;
  if (!parse_u64(tokens[2], info.heartbeat_period_ms)) return false;
  out = info;
  return true;
}

std::vector<std::vector<std::size_t>> plan_fault_groups(
    std::span<const std::size_t> fault_indices, std::size_t workers,
    std::size_t group_size) {
  std::vector<std::vector<std::size_t>> groups;
  if (fault_indices.empty()) return groups;
  if (group_size == 0) {
    // ~8 claimable groups per worker keeps stealing granular without
    // drowning the pipe in assignment round trips; MOT cost per fault is
    // wildly skewed, so small groups matter more than batching.
    const std::size_t w = std::max<std::size_t>(workers, 1);
    group_size = std::clamp<std::size_t>(fault_indices.size() / (w * 8),
                                         std::size_t{1}, std::size_t{32});
  }
  for (std::size_t begin = 0; begin < fault_indices.size();
       begin += group_size) {
    const std::size_t end =
        std::min(begin + group_size, fault_indices.size());
    groups.emplace_back(fault_indices.begin() + begin,
                        fault_indices.begin() + end);
  }
  return groups;
}

bool chaos_should_kill(std::uint64_t seed, std::size_t fault_index,
                       std::size_t incarnation, std::uint64_t permille) {
  if (permille == 0) return false;
  std::uint64_t z = seed ^ (0x9e3779b97f4a7c15ull * (fault_index + 1)) ^
                    (0xc2b2ae3d27d4eb4full * (incarnation + 1));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z % 1000 < permille;
}

}  // namespace motsim::shard
