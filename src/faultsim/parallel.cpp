#include "faultsim/parallel.hpp"

#include <algorithm>
#include <cassert>

#include "logic/eval.hpp"
#include "logic/pval.hpp"
#include "netlist/levelized.hpp"
#include "util/thread_pool.hpp"

namespace motsim {

namespace {

constexpr std::size_t kGroup = 63;  // slot 63 carries the fault-free machine

}  // namespace

void ParallelFaultSimulator::run_group(const TestSequence& test,
                                       const SeqTrace& fault_free,
                                       const Fault* faults, std::size_t n_faults,
                                       ConvOutcome* outcomes,
                                       GroupScratch& scratch) const {
  const Circuit& c = *circuit_;
  const LevelizedCircuit& lv = c.levelized();
  const std::size_t L = test.length();

  // Per-gate fault lists for quick fixup lookup, in reusable scratch (a
  // fresh allocation per 63-fault group dominated the profile on the
  // largest circuits). Only the <=63 touched entries are cleared.
  auto& stem_faults = scratch.stem_faults;
  auto& pin_faults = scratch.pin_faults;
  for (GateId g : scratch.touched) {
    stem_faults[g].clear();
    pin_faults[g].clear();
  }
  scratch.touched.clear();
  for (unsigned s = 0; s < n_faults; ++s) {
    const GateId g = faults[s].gate;
    if (stem_faults[g].empty() && pin_faults[g].empty()) {
      scratch.touched.push_back(g);
    }
    if (faults[s].pin == kOutputPin) {
      stem_faults[g].push_back(s);
    } else {
      pin_faults[g].push_back(s);
    }
  }

  std::vector<PVal>& vals = scratch.vals;
  std::vector<PVal>& state = scratch.state;
  vals.assign(c.num_gates(), pv_all_x());
  state.assign(c.num_dffs(), pv_all_x());

  // Initial state: all-X except stem-stuck flip-flop outputs.
  for (std::size_t k = 0; k < c.num_dffs(); ++k) {
    for (unsigned s : stem_faults[c.dffs()[k]]) {
      pv_set(state[k], s, faults[s].stuck);
    }
  }

  std::uint64_t detected = 0;
  // Condition (C) tracking: first frame with an unspecified state variable
  // and last frame with a fault-free-specified / faulty-X output.
  std::vector<int> first_x_sv(64, -1);
  std::vector<int> last_out_pair(64, -1);

  auto scalar_fixup = [&](GateId id) {
    const Gate& g = c.gate(id);
    for (unsigned s : pin_faults[id]) {
      // Re-evaluate this gate for slot s with the faulty pin forced.
      thread_local std::vector<Val> ins;
      ins.clear();
      for (std::size_t k = 0; k < g.fanins.size(); ++k) {
        ins.push_back(static_cast<int>(k) == faults[s].pin
                          ? faults[s].stuck
                          : pv_get(vals[g.fanins[k]], s));
      }
      pv_set(vals[id], s, eval_gate(g.type, ins));
    }
    for (unsigned s : stem_faults[id]) {
      pv_set(vals[id], s, faults[s].stuck);
    }
  };

  for (std::size_t u = 0; u < L; ++u) {
    // Record slots that still have unspecified state variables.
    std::uint64_t x_sv = 0;
    for (std::size_t k = 0; k < c.num_dffs(); ++k) {
      x_sv |= ~(state[k].ones | state[k].zeros);
    }
    for (unsigned s = 0; s < n_faults; ++s) {
      if (first_x_sv[s] < 0 && ((x_sv >> s) & 1)) {
        first_x_sv[s] = static_cast<int>(u);
      }
    }

    // Drive primary inputs.
    for (std::size_t k = 0; k < c.num_inputs(); ++k) {
      const GateId pi = c.inputs()[k];
      vals[pi] = pv_splat(test.at(u, k));
      for (unsigned s : stem_faults[pi]) pv_set(vals[pi], s, faults[s].stuck);
    }
    for (std::size_t k = 0; k < c.num_dffs(); ++k) {
      vals[c.dffs()[k]] = state[k];
    }

    // Bulk evaluation with per-slot fault patching. The levelized order
    // leads with the constant gates (level 0), so one sweep over its flat
    // arrays covers the whole combinational frame.
    for (const GateId id : lv.order()) {
      const GateId* fanins = lv.fanins(id);
      vals[id] = pv_eval_gate_fn(
          lv.type(id), lv.fanin_count(id),
          [&](std::size_t k) -> const PVal& { return vals[fanins[k]]; });
      scalar_fixup(id);
    }

    // Detection and output-pair tracking against the fault-free response.
    std::uint64_t pair_mask = 0;
    for (std::size_t o = 0; o < c.num_outputs(); ++o) {
      const Val good = fault_free.outputs[u][o];
      if (!is_specified(good)) continue;
      const PVal& po = vals[c.outputs()[o]];
      detected |= good == Val::One ? po.zeros : po.ones;
      pair_mask |= ~(po.ones | po.zeros);
    }
    for (unsigned s = 0; s < n_faults; ++s) {
      if ((pair_mask >> s) & 1) last_out_pair[s] = static_cast<int>(u);
    }

    // Drop-on-detect: once every fault in the group is detected the later
    // frames cannot change any outcome — detection is sticky and condition
    // (C) is only consulted for undetected faults.
    const std::uint64_t group_mask = (1ull << n_faults) - 1;
    if ((detected & group_mask) == group_mask) break;

    // Latch next state with D-pin and Q-stem fault patching.
    for (std::size_t k = 0; k < c.num_dffs(); ++k) {
      const GateId q = c.dffs()[k];
      PVal next = vals[c.dff_input(k)];
      for (unsigned s : pin_faults[q]) pv_set(next, s, faults[s].stuck);
      for (unsigned s : stem_faults[q]) pv_set(next, s, faults[s].stuck);
      state[k] = next;
    }
  }

  for (unsigned s = 0; s < n_faults; ++s) {
    ConvOutcome& out = outcomes[s];
    out.detected = (detected >> s) & 1;
    out.passes_c = !out.detected && first_x_sv[s] >= 0 &&
                   last_out_pair[s] >= first_x_sv[s];
  }
}

std::vector<ConvOutcome> ParallelFaultSimulator::run(
    const TestSequence& test, const SeqTrace& fault_free,
    const std::vector<Fault>& faults, std::size_t num_threads) const {
  assert(fault_free.length() == test.length());
  std::vector<ConvOutcome> outcomes(faults.size());
  const std::size_t n_groups = (faults.size() + kGroup - 1) / kGroup;
  const std::size_t threads =
      std::min(std::max<std::size_t>(n_groups, 1), resolve_thread_count(num_threads));
  if (threads <= 1) {
    GroupScratch scratch;
    scratch.stem_faults.resize(circuit_->num_gates());
    scratch.pin_faults.resize(circuit_->num_gates());
    for (std::size_t base = 0; base < faults.size(); base += kGroup) {
      const std::size_t n = std::min(kGroup, faults.size() - base);
      run_group(test, fault_free, faults.data() + base, n,
                outcomes.data() + base, scratch);
    }
    return outcomes;
  }
  // Each lane owns one scratch; each group writes a disjoint outcome slice,
  // so the merge is the identity and the result is schedule-independent.
  std::vector<GroupScratch> scratch(threads);
  for (GroupScratch& s : scratch) {
    s.stem_faults.resize(circuit_->num_gates());
    s.pin_faults.resize(circuit_->num_gates());
  }
  ThreadPool pool(threads);
  pool.parallel_for_dynamic(
      n_groups, /*grain=*/1,
      [&](std::size_t gb, std::size_t ge, std::size_t lane) {
        for (std::size_t g = gb; g < ge; ++g) {
          const std::size_t base = g * kGroup;
          const std::size_t n = std::min(kGroup, faults.size() - base);
          run_group(test, fault_free, faults.data() + base, n,
                    outcomes.data() + base, scratch[lane]);
        }
      });
  return outcomes;
}

}  // namespace motsim
