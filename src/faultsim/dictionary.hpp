// Fault dictionaries and response-based diagnosis.
//
// A full-response dictionary stores, per fault, the three-valued output
// response of the faulty machine under the given test (from the all-X
// initial state). It supports:
//
//  * diagnosis — given an observed response (possibly partial), list the
//    faults whose stored response does not conflict with it,
//  * behavioural equivalence classes — faults with identical responses are
//    indistinguishable by this test (used to cross-check structural
//    collapsing from the other direction),
//  * detection queries consistent with ConventionalFaultSimulator.
//
// Responses are stored X-compressed per time unit; building is serial per
// fault (one sequential simulation each), which is the right trade-off for
// the diagnosis-sized fault lists this is meant for.
#pragma once

#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "sim/seq_sim.hpp"
#include "sim/test_sequence.hpp"

namespace motsim {

class FaultDictionary {
 public:
  /// Simulates every fault under `test`. `good` must be the fault-free
  /// trace of `test`.
  static FaultDictionary build(const Circuit& c, const TestSequence& test,
                               const SeqTrace& good, std::vector<Fault> faults);

  std::size_t num_faults() const { return faults_.size(); }
  const Fault& fault(std::size_t k) const { return faults_[k]; }

  /// Response of fault k: responses()[u][o].
  const std::vector<std::vector<Val>>& response(std::size_t k) const {
    return responses_[k];
  }

  /// Conventionally detected under the stored good response.
  bool is_detected(std::size_t k) const { return detected_[k] != 0; }

  /// Indices of faults whose stored response does not conflict with the
  /// observed one (same shape as the good outputs; X = not observed). The
  /// fault-free machine is candidate index SIZE_MAX when it is consistent
  /// too — returned via `fault_free_consistent`.
  std::vector<std::size_t> diagnose(
      const std::vector<std::vector<Val>>& observed,
      bool* fault_free_consistent = nullptr) const;

  /// Groups fault indices by identical response strings. Faults in one
  /// group cannot be distinguished by this test.
  std::vector<std::vector<std::size_t>> equivalence_classes() const;

 private:
  std::vector<Fault> faults_;
  std::vector<std::vector<std::vector<Val>>> responses_;
  std::vector<std::vector<Val>> good_outputs_;
  std::vector<char> detected_;
};

}  // namespace motsim
