// Thread-parallel driver for the per-fault MOT procedures.
//
// The MOT stage is embarrassingly parallel across faults but each
// MotFaultSimulator / BackwardCollector / ExpansionBaseline instance carries
// mutable scratch (frame buffers, implicator state, the Random-selection
// RNG) and therefore must never be shared across threads. MotBatchRunner
// shards an undetected-fault list over a ThreadPool, builds one full
// simulator set per worker lane, and claims faults in small dynamic chunks —
// MOT cost per fault is wildly skewed (a few faults do thousands of
// expansions), so static sharding would strand every other worker behind
// the most expensive shard.
//
// Determinism: each result is written into the output slot of its fault, so
// the merged vector is in input order regardless of thread count or
// schedule; and the Random-selection stream is reseeded per fault from
// (selection_seed, fault index), so even SelectionPolicy::Random yields
// byte-identical results at 1, 2, or N threads. With num_threads == 1 no
// pool is constructed and faults run in input order on the calling thread,
// matching the historical serial loop (bit-identical for the default
// selection policy, which never draws from the RNG).
//
// Campaign resilience: the runner arms a campaign-wide deadline
// (MotOptions::campaign_time_ms), accepts an external CancelToken, and can
// append every completed outcome to a crash-safe CampaignJournal so an
// interrupted campaign resumes where it stopped (see checkpoint.hpp). A
// stopped campaign still returns one item per requested fault — unprocessed
// faults come back incomplete with Unresolved{Cancelled}.
//
// Worker isolation: each per-fault MOT run executes under a catch-all. An
// exception quarantines that one fault as Unresolved{EngineError} with a
// sanitized diagnostic (MotBatchItem::error) and a journal record — one
// poisoned fault never kills the shard, and because the quarantine decision
// is a deterministic per-fault function, results stay bit-identical across
// thread counts. Quarantined and budget-stopped faults then walk the
// graceful-degradation ladder (DegradeLevel): plain [4] expansion, then the
// conventional classification, recording the downgrade. A journal whose
// append fails permanently (disk full) converts the run into a flushed,
// resumable campaign stop — see CampaignJournal::failure().
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "mot/baseline.hpp"
#include "mot/proposed.hpp"
#include "util/deadline.hpp"

namespace motsim {

class CampaignJournal;

/// How far the graceful-degradation ladder stepped down for one fault
/// (proposed → plain [4] expansion → conventional classification). Each rung
/// is strictly less precise, never unsound: a degraded "detected" was proven
/// by the engine that produced it, and a degraded non-detection stays
/// unresolved rather than pretending to be definitive.
enum class DegradeLevel : std::uint8_t {
  None,            ///< full proposed-procedure result
  PlainExpansion,  ///< the [4]-style plain expansion answered instead
  Conventional,    ///< only the conventional classification survived
};

const char* to_string(DegradeLevel level);

struct MotBatchItem {
  std::size_t fault_index = 0;  ///< index into the fault list passed to run()
  /// False when the campaign stopped (deadline or cancellation) before this
  /// fault was simulated: `mot` then carries only Unresolved{Cancelled}.
  /// Incomplete items are never journaled, so a resumed campaign re-runs
  /// exactly these faults.
  bool completed = true;
  MotResult mot;
  /// The [4] expansion baseline on the same shared conventional trace.
  /// Meaningful only when the runner was constructed with run_baseline.
  BaselineResult baseline;
  /// Which rung of the degradation ladder produced `mot` (None = the full
  /// proposed procedure). Journaled, so resumed campaigns keep the record.
  DegradeLevel degrade = DegradeLevel::None;
  /// Sanitized one-token diagnostic of a quarantined engine error ("-" never
  /// appears here; empty = no error). Non-empty iff this fault hit the
  /// catch-all: either mot.unresolved == EngineError or the ladder resolved
  /// it at a lower rung.
  std::string error;

  friend bool operator==(const MotBatchItem&, const MotBatchItem&) = default;
};

class MotBatchRunner {
 public:
  /// Thread count comes from options.num_threads (0 = hardware threads,
  /// 1 = serial). `run_baseline` also runs ExpansionBaseline per fault,
  /// sharing the conventional trace with the proposed procedure exactly as
  /// the serial experiment loop did.
  MotBatchRunner(const Circuit& c, MotOptions options, bool run_baseline = false);

  /// Simulates faults[k] for every k in `indices` (typically the undetected
  /// faults passing condition (C)). Result i corresponds to indices[i].
  ///
  /// Campaign resilience (all optional):
  ///  * options.campaign_time_ms arms a campaign deadline at the top of this
  ///    call; when it expires, in-flight faults stop via their budget polls
  ///    and every remaining fault is returned as an incomplete item with
  ///    Unresolved{Cancelled} — there is exactly one outcome per index,
  ///    never a hang, never a silent drop, and the input-order merge of the
  ///    completed faults is unchanged.
  ///  * `cancel` stops the batch the same way from another thread.
  ///  * `journal` makes the campaign crash-safe and resumable: faults whose
  ///    outcome the journal already holds are not re-simulated (their
  ///    recorded items are merged in place) and every newly completed fault
  ///    is appended (fsync'd) as soon as it finishes.
  std::vector<MotBatchItem> run(const TestSequence& test, const SeqTrace& good,
                                const std::vector<Fault>& faults,
                                std::span<const std::size_t> indices,
                                CampaignJournal* journal,
                                const CancelToken* cancel = nullptr) const;

  std::vector<MotBatchItem> run(const TestSequence& test, const SeqTrace& good,
                                const std::vector<Fault>& faults,
                                std::span<const std::size_t> indices) const {
    return run(test, good, faults, indices, nullptr, nullptr);
  }

  /// Convenience: simulates every fault in the list.
  std::vector<MotBatchItem> run_all(const TestSequence& test,
                                    const SeqTrace& good,
                                    const std::vector<Fault>& faults) const;

  /// Resolved worker count (before clamping to the batch size).
  std::size_t threads() const { return threads_; }

  const MotOptions& options() const { return options_; }

  /// Test/verification hook, invoked with the fault index at the top of each
  /// per-fault unit of work. A throw from the hook emulates an engine crash
  /// on exactly that fault, driving the quarantine path deterministically —
  /// used by the fault-injection tests and the worker-quarantine check of
  /// src/verify. Never set in production runs.
  void set_fault_hook(std::function<void(std::size_t fault_index)> hook) {
    fault_hook_ = std::move(hook);
  }

 private:
  const Circuit* circuit_;
  MotOptions options_;
  bool run_baseline_;
  std::size_t threads_;
  std::function<void(std::size_t)> fault_hook_;
};

/// The per-fault Random-selection seed (splitmix64 mix of the configured
/// seed and the fault index). Exposed for the determinism tests.
std::uint64_t per_fault_selection_seed(std::uint64_t base, std::uint64_t fault_index);

}  // namespace motsim
