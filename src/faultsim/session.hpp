// Incremental parallel-fault simulation session.
//
// Holds the running state of the fault-free machine and of every faulty
// machine (packed 63 per PVal group) so that test patterns can be applied
// segment by segment. Cloning a session forks all machine states, which is
// what simulation-guided test generation needs: propose a candidate segment
// on a fork, keep the winner, never resimulate the prefix.
//
// apply() is semantically equivalent to running ParallelFaultSimulator over
// the concatenation of every segment applied so far (asserted by tests).
#pragma once

#include <vector>

#include "fault/fault.hpp"
#include "logic/pval.hpp"
#include "sim/seq_sim.hpp"
#include "sim/test_sequence.hpp"

namespace motsim {

class ParallelFaultSession {
 public:
  /// The session keeps references to `circuit` and `faults`; both must
  /// outlive it (clones included).
  ParallelFaultSession(const Circuit& circuit, const std::vector<Fault>& faults);

  ParallelFaultSession(const ParallelFaultSession&) = default;
  ParallelFaultSession& operator=(const ParallelFaultSession&) = default;

  /// Simulates `segment` from the current state of every machine.
  void apply(const TestSequence& segment);

  /// Faults conventionally detected by everything applied so far.
  std::size_t detected_count() const { return detected_count_; }
  bool is_detected(std::size_t fault_index) const {
    return detected_[fault_index] != 0;
  }

  /// Total number of patterns applied.
  std::size_t length() const { return length_; }

 private:
  struct Group {
    std::size_t first = 0;  ///< index of the group's first fault
    std::size_t count = 0;
    std::vector<PVal> state;  ///< per flip-flop
  };

  void step_group(Group& group, const std::vector<Val>& pattern,
                  const std::vector<Val>& good_outputs);

  const Circuit* circuit_;
  const std::vector<Fault>* faults_;
  std::vector<Group> groups_;
  std::vector<Val> good_state_;    // fault-free machine state
  std::vector<char> detected_;     // per fault
  std::size_t detected_count_ = 0;
  std::size_t length_ = 0;
  // Scratch (excluded from the logical state; re-created on demand).
  std::vector<PVal> vals_;
  std::vector<Val> good_vals_;
};

}  // namespace motsim
