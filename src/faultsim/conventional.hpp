// Conventional (single observation time) three-valued fault simulation —
// the baseline every MOT technique starts from.
//
// A fault is conventionally detected when some primary output at some time
// unit is specified to opposite binary values in the fault-free and faulty
// machines, both simulated from the all-X initial state.
#pragma once

#include <vector>

#include "fault/fault.hpp"
#include "sim/seq_sim.hpp"
#include "sim/test_sequence.hpp"

namespace motsim {

struct ConvOutcome {
  bool detected = false;  ///< detected under the single observation time
  bool passes_c = false;  ///< undetected but satisfies the paper's condition (C)
};

class ConventionalFaultSimulator {
 public:
  explicit ConventionalFaultSimulator(const Circuit& c,
                                      KernelKind kernel = KernelKind::SoA)
      : circuit_(&c), sim_(c, kernel), kernel_(kernel) {}

  /// Full faulty trace (with line values when keep_lines) — the starting
  /// point for the MOT procedures. When `reference` points at a fault-free
  /// trace of the same test simulated with keep_lines, the SoA kernel
  /// replays it and re-evaluates only the fault's cone of influence per
  /// frame — bit-identical result, a fraction of the work.
  SeqTrace simulate_fault(const TestSequence& test, const Fault& f,
                          bool keep_lines = false,
                          const SeqTrace* reference = nullptr) const;

  ConvOutcome analyze(const TestSequence& test, const SeqTrace& fault_free,
                      const Fault& f) const;

  /// Serial batch over a fault list.
  std::vector<ConvOutcome> run(const TestSequence& test,
                               const SeqTrace& fault_free,
                               const std::vector<Fault>& faults) const;

 private:
  const Circuit* circuit_;
  SequentialSimulator sim_;
  KernelKind kernel_ = KernelKind::SoA;
};

}  // namespace motsim
