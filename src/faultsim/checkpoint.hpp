// Crash-safe campaign journal: resume a long fault-simulation run.
//
// A campaign over tens of thousands of faults can run for hours; a crash,
// OOM kill, or cluster preemption should not throw the finished work away.
// CampaignJournal makes MotBatchRunner::run() restartable:
//
//  * create() writes a versioned header describing the campaign (circuit,
//    fault count, a hash of the test sequence, the options fingerprint) to a
//    temporary file, fsyncs it and renames it into place — a crash during
//    creation leaves either no journal or a complete header, never a torn
//    one. The directory entry is fsync'd too, so the rename itself is
//    durable.
//  * append() writes one complete record per resolved fault, terminated by
//    a sentinel, and fsyncs before returning. A crash mid-append therefore
//    loses at most the record being written, and that loss is detectable:
//    the torn line has no terminator.
//  * open_resume() validates the header against the campaign about to run
//    (resuming against a different circuit, fault list, test sequence or
//    option set would silently mix incompatible results — that is an error,
//    not a best effort), loads every complete record, discards a torn final
//    record if present (truncating the file so the next append starts on a
//    fresh line), and rejects corruption anywhere else.
//
// Records are plain text, one line per fault, so a journal is inspectable
// with standard tools and diffable across runs. Faults are keyed by their
// index into the campaign's fault list; lookup() is lock-free because the
// resume map is immutable once opened — during a run each fault index is
// visited exactly once, so appends never need to feed back into the map.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "faultsim/batch.hpp"
#include "mot/options.hpp"

namespace motsim {

/// Campaign identity stamped into the journal header. open_resume() refuses
/// a journal whose meta does not match the run being resumed.
struct JournalMeta {
  std::string circuit;          ///< circuit name (e.g. "s5378")
  std::uint64_t num_faults = 0; ///< size of the campaign's fault list
  std::uint64_t test_length = 0;
  std::uint64_t test_hash = 0;  ///< hash_test() of the stimulus
  std::uint64_t options_hash = 0;  ///< fingerprint of result-affecting options
  bool baseline = false;        ///< records carry [4]-baseline fields too

  friend bool operator==(const JournalMeta&, const JournalMeta&) = default;
};

/// FNV-1a over every (time unit, input) value of the sequence.
std::uint64_t hash_test(const TestSequence& test);

/// Fingerprint of the MotOptions fields that affect per-fault outcomes.
/// num_threads and campaign_time_ms are excluded on purpose: neither changes
/// any individual fault's result, and a resumed campaign may legitimately
/// use a different thread count or a fresh campaign budget.
std::uint64_t hash_options(const MotOptions& options);

/// Convenience assembler for the meta block of a campaign.
JournalMeta make_journal_meta(const std::string& circuit_name,
                              std::size_t num_faults, const TestSequence& test,
                              const MotOptions& options, bool baseline);

class CampaignJournal {
 public:
  /// Starts a fresh journal at `path` (overwriting any existing file) via
  /// write-temp-then-rename. Returns nullptr and sets `error` on I/O
  /// failure.
  static std::unique_ptr<CampaignJournal> create(const std::string& path,
                                                 const JournalMeta& meta,
                                                 std::string& error);

  /// Opens an existing journal for resumption. Fails (nullptr + `error`)
  /// when the file is missing, the header does not match `expected`, or any
  /// record other than a torn final one is malformed. On success the journal
  /// is positioned for appending new records.
  static std::unique_ptr<CampaignJournal> open_resume(
      const std::string& path, const JournalMeta& expected, std::string& error);

  ~CampaignJournal();
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  /// The recorded outcome for a fault, or nullptr if the journal has none.
  /// Lock-free: the resume map never changes after open.
  const MotBatchItem* lookup(std::size_t fault_index) const;

  /// Appends one resolved fault (fsync'd before returning). Thread-safe.
  /// Returns false on I/O failure; the first failure disables the journal
  /// (later appends return false immediately) so a full disk degrades the
  /// campaign to journal-less operation instead of spamming syscalls.
  bool append(const MotBatchItem& item);

  /// Number of records loaded by open_resume() (0 for a fresh journal).
  std::size_t resumed_count() const { return resumed_.size(); }

  const std::string& path() const { return path_; }
  const JournalMeta& meta() const { return meta_; }

 private:
  CampaignJournal() = default;

  std::string path_;
  JournalMeta meta_;
  int fd_ = -1;
  bool failed_ = false;  // guarded by mu_
  std::mutex mu_;
  std::unordered_map<std::size_t, MotBatchItem> resumed_;
};

}  // namespace motsim
