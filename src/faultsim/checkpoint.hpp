// Crash-safe campaign journal: resume a long fault-simulation run.
//
// A campaign over tens of thousands of faults can run for hours; a crash,
// OOM kill, or cluster preemption should not throw the finished work away.
// CampaignJournal makes MotBatchRunner::run() restartable:
//
//  * create() writes a versioned header describing the campaign (circuit,
//    fault count, a hash of the test sequence, the options fingerprint) to a
//    temporary file, fsyncs it and renames it into place — a crash during
//    creation leaves either no journal or a complete header, never a torn
//    one. The directory entry is fsync'd too, so the rename itself is
//    durable.
//  * append() writes one complete record per resolved fault, terminated by
//    a sentinel, and fsyncs before returning. A crash mid-append therefore
//    loses at most the record being written, and that loss is detectable:
//    the torn line has no terminator. Transient I/O errors are retried with
//    backoff; permanent ones latch failed() so the campaign stops cleanly
//    and resumably instead of losing the run (see append()).
//  * open_resume() validates the header against the campaign about to run
//    (resuming against a different circuit, fault list, test sequence or
//    option set would silently mix incompatible results — that is an error,
//    not a best effort), loads every complete record, discards a torn final
//    record if present (truncating the file so the next append starts on a
//    fresh line), and rejects corruption anywhere else.
//
// Records are plain text, one line per fault, so a journal is inspectable
// with standard tools and diffable across runs. Faults are keyed by their
// index into the campaign's fault list; lookup() is lock-free because the
// resume map is immutable once opened — during a run each fault index is
// visited exactly once, so appends never need to feed back into the map.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "faultsim/batch.hpp"
#include "mot/options.hpp"
#include "util/errors.hpp"
#include "util/fsio.hpp"

namespace motsim {

/// Campaign identity stamped into the journal header. open_resume() refuses
/// a journal whose meta does not match the run being resumed.
struct JournalMeta {
  std::string circuit;          ///< circuit name (e.g. "s5378")
  std::uint64_t num_faults = 0; ///< size of the campaign's fault list
  std::uint64_t test_length = 0;
  std::uint64_t test_hash = 0;  ///< hash_test() of the stimulus
  std::uint64_t options_hash = 0;  ///< fingerprint of result-affecting options
  bool baseline = false;        ///< records carry [4]-baseline fields too

  friend bool operator==(const JournalMeta&, const JournalMeta&) = default;
};

/// FNV-1a over every (time unit, input) value of the sequence.
std::uint64_t hash_test(const TestSequence& test);

/// Fingerprint of the MotOptions fields that affect per-fault outcomes.
/// num_threads and campaign_time_ms are excluded on purpose: neither changes
/// any individual fault's result, and a resumed campaign may legitimately
/// use a different thread count or a fresh campaign budget.
std::uint64_t hash_options(const MotOptions& options);

/// Convenience assembler for the meta block of a campaign.
JournalMeta make_journal_meta(const std::string& circuit_name,
                              std::size_t num_faults, const TestSequence& test,
                              const MotOptions& options, bool baseline);

/// The journal-v2 record line of one resolved fault (newline-terminated) —
/// the single serialization of a fault outcome in the system. The journal
/// appends it, and the multi-process shard protocol (faultsim/shard.hpp)
/// ships the very same bytes from worker to coordinator, so every consumer
/// round-trips through one codec.
std::string encode_journal_record(const MotBatchItem& item, bool baseline);

/// Strict inverse of encode_journal_record (the trailing newline is
/// optional). False on any malformation; on success `out.completed` is true.
bool decode_journal_record(std::string_view line, bool baseline,
                           MotBatchItem& out);

class CampaignJournal {
 public:
  /// Starts a fresh journal at `path` (overwriting any existing file) via
  /// write-temp-then-rename. Returns nullptr and sets `error` on I/O
  /// failure. All I/O goes through `io` (nullptr = the real filesystem),
  /// which is how the fault-injection tests script ENOSPC/EINTR/crashes.
  static std::unique_ptr<CampaignJournal> create(const std::string& path,
                                                 const JournalMeta& meta,
                                                 std::string& error,
                                                 fsio::FsIo* io = nullptr);

  /// Opens an existing journal for resumption. Fails (nullptr + `error`)
  /// when the file is missing, the header does not match `expected`, or any
  /// record other than a torn final one is malformed. On success the journal
  /// is positioned for appending new records.
  static std::unique_ptr<CampaignJournal> open_resume(
      const std::string& path, const JournalMeta& expected, std::string& error,
      fsio::FsIo* io = nullptr);

  ~CampaignJournal();
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  /// The recorded outcome for a fault, or nullptr if the journal has none.
  /// Lock-free: the resume map never changes after open.
  const MotBatchItem* lookup(std::size_t fault_index) const;

  /// Appends one resolved fault (fsync'd before returning). Thread-safe.
  ///
  /// Fault tolerance: a transiently failing write/fsync (EINTR storms,
  /// EAGAIN) is retried under the journal's RetryPolicy with exponential
  /// backoff; before each retry the file is truncated back to its last
  /// committed length so a half-written record is never followed by a
  /// duplicate. A permanent error (disk full) or exhausted retries latch
  /// failed() with a failure() message and every later append returns false
  /// immediately — the batch driver turns that into a flushed, resumable
  /// campaign stop (see MotBatchRunner).
  bool append(const MotBatchItem& item);

  /// True once an append failed permanently. Thread-safe, lock-free.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// The diagnostic of the permanent failure ("" while healthy).
  std::string failure() const;

  /// Overrides the append retry policy (and optionally the inter-retry
  /// sleep, injectable for tests). Call before handing the journal to a
  /// batch runner; not thread-safe against concurrent appends.
  void set_retry_policy(const RetryPolicy& policy,
                        std::function<void(std::uint64_t)> sleep_us = {});

  /// Number of records loaded by open_resume() (0 for a fresh journal).
  std::size_t resumed_count() const { return resumed_.size(); }

  const std::string& path() const { return path_; }
  const JournalMeta& meta() const { return meta_; }

 private:
  CampaignJournal() = default;

  /// One write+fsync attempt of `record`, rolling the file back to
  /// committed_ on failure. Returns 0 or the errno. Caller holds mu_.
  int try_append_locked(const std::string& record);

  std::string path_;
  JournalMeta meta_;
  fsio::FsIo* io_ = nullptr;
  int fd_ = -1;
  /// Bytes of the file known durable (header + every fsync'd record); the
  /// rollback point when a retried append made partial progress.
  std::uint64_t committed_ = 0;
  RetryPolicy retry_;
  std::function<void(std::uint64_t)> sleep_us_;
  std::atomic<bool> failed_{false};
  std::string failure_;  // guarded by mu_
  mutable std::mutex mu_;
  std::unordered_map<std::size_t, MotBatchItem> resumed_;
};

}  // namespace motsim
