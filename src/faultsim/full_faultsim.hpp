// Full fault simulation over the ISCAS-85 conformance formats.
//
// This is the third-party interop surface of the combinational path. The
// formats follow the external testcase convention (tests/testcases/):
//
//   <ckt>.in   one pattern per line,
//                N1=0, N2=1, ... | N22=0, N23=1
//              left of '|': every primary input, fully specified (0/1);
//              right: the fault-free primary outputs claimed by whoever
//              generated the file. The driver re-simulates and refuses to
//              produce answers when the claim disagrees — that cross-check
//              is the whole point of an externally-generated golden.
//
//   <ckt>.ans  one line per (pattern, net):
//                <pattern_index> <net> <sa0_eq> <sa1_eq>
//              pattern_index is 0-based in file order; nets iterate every
//              named net (gate output, primary inputs included) in netlist
//              declaration order. An eq flag of 1 means injecting that
//              stuck-at fault leaves every primary output identical to the
//              fault-free response for that pattern; 0 means an observable
//              difference.
//
//   <ckt>.ans.sha  lower-case hex SHA-256 of the .ans bytes, no filename.
//
// run_full_faultsim produces the .ans bytes under either kernel:
//   Legacy — per-(pattern, fault) serial three-valued simulation through
//            SequentialSimulator/FaultView, the reference semantics;
//   SoA    — 64 patterns per PVal lane over the levelized order, with the
//            faulty resweep starting at the fault site's level.
// Both must emit byte-identical files at any thread count; the conformance
// tests enforce it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "logic/val.hpp"
#include "netlist/circuit.hpp"
#include "netlist/levelized.hpp"

namespace motsim {

/// Parsed <ckt>.in contents, re-ordered to circuit declaration order.
struct ConformancePatterns {
  /// patterns[p][k]: value applied to primary input k (circuit input order).
  std::vector<std::vector<Val>> patterns;
  /// claimed[p][o]: fault-free primary output o claimed by the file.
  std::vector<std::vector<Val>> claimed;

  std::size_t size() const { return patterns.size(); }
};

struct InParseResult {
  bool ok = false;
  ConformancePatterns patterns;  ///< valid only when ok
  std::string error;
  std::size_t error_line = 0;  ///< 1-based line of the offending pattern
};

/// Parses .in text against `c` (net names resolved, every input required).
InParseResult parse_conformance_in(std::string_view text, const Circuit& c);
InParseResult parse_conformance_in_file(const std::string& path, const Circuit& c);

/// Renders .in text: inputs in declaration order, then the claimed outputs.
std::string write_conformance_in(const Circuit& c, const ConformancePatterns& pat);

struct FullFaultSimOptions {
  KernelKind kernel = KernelKind::SoA;
  /// Lanes for the fault loop (resolve_thread_count semantics; results are
  /// bit-identical at any count).
  std::size_t num_threads = 1;
  /// Cross-check the fault-free response against the .in claim (disable only
  /// for freshly generated patterns that carry no claim yet).
  bool verify_outputs = true;
};

struct FullFaultSimResult {
  bool ok = false;
  std::string error;       ///< set when !ok (e.g. .in claim mismatch)
  std::string ans;         ///< the .ans bytes
  std::string ans_sha256;  ///< lower-case hex digest of `ans`
};

/// Runs full fault simulation: every named net x {s-a-0, s-a-1} x every
/// pattern. Precondition: `c` is combinational (no flip-flops).
FullFaultSimResult run_full_faultsim(const Circuit& c,
                                     const ConformancePatterns& pat,
                                     const FullFaultSimOptions& opts);

/// Deterministic pattern generation for a testcase: `count` patterns whose
/// input values are drawn from Rng(seed) (input-major, rng.next_below(2)),
/// with the claimed outputs computed by the Legacy serial simulator — a
/// different code path than the packed driver that later consumes them.
ConformancePatterns generate_conformance_patterns(const Circuit& c,
                                                  std::size_t count,
                                                  std::uint64_t seed);

}  // namespace motsim
