#include "faultsim/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

namespace motsim {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

std::string format_header(const JournalMeta& meta) {
  std::ostringstream os;
  // Version 2 added the degrade level and quarantine diagnostic per record;
  // the verbatim header match makes older journals refuse to resume rather
  // than parse wrongly.
  os << "motsim-journal 2\n"
     << "circuit " << meta.circuit << '\n'
     << "faults " << meta.num_faults << '\n'
     << "test-length " << meta.test_length << '\n'
     << "test-hash " << std::hex << meta.test_hash << '\n'
     << "options-hash " << meta.options_hash << std::dec << '\n'
     << "baseline " << (meta.baseline ? 1 : 0) << '\n'
     << "end\n";
  return os.str();
}

std::string format_record(const MotBatchItem& item, bool baseline) {
  std::ostringstream os;
  const MotResult& m = item.mot;
  os << "f " << item.fault_index << ' ' << int(m.detected) << ' '
     << unsigned(static_cast<std::uint8_t>(m.phase)) << ' '
     << int(m.detected_conventional) << ' ' << int(m.passes_c) << ' '
     << m.counters.n_det << ' ' << m.counters.n_conf << ' '
     << m.counters.n_extra << ' ' << m.expansions << ' ' << m.phase1_pairs
     << ' ' << m.final_sequences << ' ' << int(m.collection_capped) << ' '
     << int(m.via_fallback) << ' '
     << unsigned(static_cast<std::uint8_t>(m.unresolved)) << ' '
     << m.work_used << ' '
     << unsigned(static_cast<std::uint8_t>(item.degrade)) << ' '
     << sanitize_token(item.error);
  if (baseline) {
    const BaselineResult& b = item.baseline;
    os << " b " << int(b.detected) << ' ' << int(b.detected_conventional)
       << ' ' << int(b.passes_c) << ' ' << b.expansions << ' '
       << b.final_sequences << ' ' << int(b.aborted) << ' '
       << unsigned(static_cast<std::uint8_t>(b.unresolved));
  }
  os << " ;\n";
  return os.str();
}

bool read_bool(std::istringstream& is, bool& out) {
  int v = -1;
  if (!(is >> v) || (v != 0 && v != 1)) return false;
  out = v != 0;
  return true;
}

/// Parses one "f ... ;" record line. Returns false on any malformation —
/// the caller decides whether that is a torn tail or corruption.
bool parse_record(const std::string& line, bool baseline, MotBatchItem& out) {
  std::istringstream is(line);
  std::string tag;
  if (!(is >> tag) || tag != "f") return false;
  MotResult& m = out.mot;
  unsigned phase = 0, unresolved = 0, degrade = 0;
  if (!(is >> out.fault_index)) return false;
  if (!read_bool(is, m.detected)) return false;
  if (!(is >> phase) || phase > static_cast<unsigned>(MotPhase::Expansion)) {
    return false;
  }
  m.phase = static_cast<MotPhase>(phase);
  if (!read_bool(is, m.detected_conventional)) return false;
  if (!read_bool(is, m.passes_c)) return false;
  if (!(is >> m.counters.n_det >> m.counters.n_conf >> m.counters.n_extra >>
        m.expansions >> m.phase1_pairs >> m.final_sequences)) {
    return false;
  }
  if (!read_bool(is, m.collection_capped)) return false;
  if (!read_bool(is, m.via_fallback)) return false;
  if (!(is >> unresolved) ||
      unresolved > static_cast<unsigned>(UnresolvedReason::EngineError)) {
    return false;
  }
  m.unresolved = static_cast<UnresolvedReason>(unresolved);
  if (!(is >> m.work_used)) return false;
  if (!(is >> degrade) ||
      degrade > static_cast<unsigned>(DegradeLevel::Conventional)) {
    return false;
  }
  out.degrade = static_cast<DegradeLevel>(degrade);
  std::string error_token;
  if (!(is >> error_token)) return false;
  out.error = error_token == "-" ? std::string() : error_token;
  if (baseline) {
    BaselineResult& b = out.baseline;
    if (!(is >> tag) || tag != "b") return false;
    if (!read_bool(is, b.detected)) return false;
    if (!read_bool(is, b.detected_conventional)) return false;
    if (!read_bool(is, b.passes_c)) return false;
    if (!(is >> b.expansions >> b.final_sequences)) return false;
    if (!read_bool(is, b.aborted)) return false;
    if (!(is >> unresolved) ||
        unresolved > static_cast<unsigned>(UnresolvedReason::EngineError)) {
      return false;
    }
    b.unresolved = static_cast<UnresolvedReason>(unresolved);
  }
  // A complete record ends with the sentinel and nothing after it: the
  // sentinel is what distinguishes a fully flushed record from a torn one.
  if (!(is >> tag) || tag != ";") return false;
  if (is >> tag) return false;
  out.completed = true;
  return true;
}

/// fsync the directory containing `path` so a rename into it is durable.
void fsync_parent_dir(fsio::FsIo& io, const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = io.open(dir.empty() ? "/" : dir.c_str(), O_RDONLY, 0);
  if (fd >= 0) {
    io.fsync(fd);
    io.close(fd);
  }
}

fsio::FsIo& resolve(fsio::FsIo* io) {
  return io != nullptr ? *io : fsio::FsIo::real();
}

}  // namespace

std::uint64_t hash_test(const TestSequence& test) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, test.length());
  fnv_mix(h, test.num_inputs());
  for (std::size_t u = 0; u < test.length(); ++u) {
    for (std::size_t i = 0; i < test.num_inputs(); ++i) {
      fnv_mix(h, static_cast<std::uint64_t>(test.at(u, i)));
    }
  }
  return h;
}

std::uint64_t hash_options(const MotOptions& o) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, o.n_states);
  fnv_mix(h, o.use_backward_implications ? 1 : 0);
  fnv_mix(h, static_cast<std::uint64_t>(o.impl_mode));
  fnv_mix(h, static_cast<std::uint64_t>(o.backward_depth));
  fnv_mix(h, o.max_pairs);
  fnv_mix(h, o.use_phase1 ? 1 : 0);
  fnv_mix(h, static_cast<std::uint64_t>(o.selection));
  fnv_mix(h, o.selection_seed);
  fnv_mix(h, o.per_fault_time_ms);
  fnv_mix(h, o.per_fault_work_limit);
  fnv_mix(h, o.fallback_plain_expansion ? 1 : 0);
  fnv_mix(h, o.degrade_on_budget ? 1 : 0);
  return h;
}

JournalMeta make_journal_meta(const std::string& circuit_name,
                              std::size_t num_faults, const TestSequence& test,
                              const MotOptions& options, bool baseline) {
  JournalMeta meta;
  meta.circuit = circuit_name;
  meta.num_faults = num_faults;
  meta.test_length = test.length();
  meta.test_hash = hash_test(test);
  meta.options_hash = hash_options(options);
  meta.baseline = baseline;
  return meta;
}

std::string encode_journal_record(const MotBatchItem& item, bool baseline) {
  return format_record(item, baseline);
}

bool decode_journal_record(std::string_view line, bool baseline,
                           MotBatchItem& out) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  return parse_record(std::string(line), baseline, out);
}

std::unique_ptr<CampaignJournal> CampaignJournal::create(
    const std::string& path, const JournalMeta& meta, std::string& error,
    fsio::FsIo* io_arg) {
  fsio::FsIo& io = resolve(io_arg);
  const std::string tmp = path + ".tmp";
  int fd = io.open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    error = "cannot create " + tmp + ": " + std::strerror(errno);
    return nullptr;
  }
  const std::string header = format_header(meta);
  const int werr = fsio::write_all(io, fd, header.data(), header.size());
  if (werr != 0 || io.fsync(fd) != 0) {
    error = "cannot write " + tmp + ": " +
            std::strerror(werr != 0 ? werr : errno);
    io.close(fd);
    io.unlink(tmp.c_str());
    return nullptr;
  }
  io.close(fd);
  if (io.rename(tmp.c_str(), path.c_str()) != 0) {
    error = "cannot rename " + tmp + " to " + path + ": " + std::strerror(errno);
    io.unlink(tmp.c_str());
    return nullptr;
  }
  fsync_parent_dir(io, path);
  fd = io.open(path.c_str(), O_WRONLY | O_APPEND, 0);
  if (fd < 0) {
    error = "cannot reopen " + path + ": " + std::strerror(errno);
    return nullptr;
  }
  auto journal = std::unique_ptr<CampaignJournal>(new CampaignJournal());
  journal->path_ = path;
  journal->meta_ = meta;
  journal->io_ = &io;
  journal->fd_ = fd;
  journal->committed_ = header.size();
  return journal;
}

std::unique_ptr<CampaignJournal> CampaignJournal::open_resume(
    const std::string& path, const JournalMeta& expected, std::string& error,
    fsio::FsIo* io_arg) {
  fsio::FsIo& io = resolve(io_arg);
  std::string content;
  if (const int rerr = fsio::read_file(io, path, content); rerr != 0) {
    error = "cannot open " + path + ": " + std::strerror(rerr);
    return nullptr;
  }

  // Header: must match format_header(expected) verbatim — any field
  // mismatch (circuit, fault count, test, options) makes the journal
  // unusable for this campaign.
  const std::string header = format_header(expected);
  if (content.compare(0, header.size(), header) != 0) {
    error = path + ": journal header does not match this campaign "
            "(different circuit, fault list, test sequence or options)";
    return nullptr;
  }

  auto journal = std::unique_ptr<CampaignJournal>(new CampaignJournal());
  journal->path_ = path;
  journal->meta_ = expected;
  journal->io_ = &io;

  // Records. `valid_end` tracks the byte offset just past the last complete
  // record so a torn tail can be truncated away before appending.
  std::size_t pos = header.size();
  std::size_t valid_end = pos;
  std::size_t line_no =
      static_cast<std::size_t>(std::count(header.begin(), header.end(), '\n'));
  while (pos < content.size()) {
    ++line_no;
    std::size_t eol = content.find('\n', pos);
    const bool has_newline = eol != std::string::npos;
    if (!has_newline) eol = content.size();
    const std::string line = content.substr(pos, eol - pos);
    const std::size_t next = has_newline ? eol + 1 : content.size();
    if (!line.empty()) {
      MotBatchItem item;
      if (parse_record(line, expected.baseline, item)) {
        journal->resumed_[item.fault_index] = item;
        valid_end = next;
      } else if (next >= content.size()) {
        // Torn final record (crash mid-append): drop it.
        break;
      } else {
        error = path + ":" + std::to_string(line_no) +
                ": malformed journal record";
        return nullptr;
      }
    } else if (has_newline) {
      valid_end = next;  // tolerate a blank line only if fully written
    }
    pos = next;
  }

  const int fd = io.open(path.c_str(), O_WRONLY | O_APPEND, 0);
  if (fd < 0) {
    error = "cannot open " + path + " for append: " + std::strerror(errno);
    return nullptr;
  }
  if (valid_end < content.size() &&
      io.ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
    error = "cannot truncate torn record in " + path + ": " +
            std::strerror(errno);
    io.close(fd);
    return nullptr;
  }
  journal->fd_ = fd;
  journal->committed_ = valid_end;
  return journal;
}

CampaignJournal::~CampaignJournal() {
  if (fd_ >= 0) io_->close(fd_);
}

const MotBatchItem* CampaignJournal::lookup(std::size_t fault_index) const {
  const auto it = resumed_.find(fault_index);
  return it == resumed_.end() ? nullptr : &it->second;
}

void CampaignJournal::set_retry_policy(
    const RetryPolicy& policy, std::function<void(std::uint64_t)> sleep_us) {
  retry_ = policy;
  sleep_us_ = std::move(sleep_us);
}

int CampaignJournal::try_append_locked(const std::string& record) {
  int err = fsio::write_all(*io_, fd_, record.data(), record.size());
  if (err == 0 && io_->fsync(fd_) != 0) err = errno != 0 ? errno : EIO;
  if (err != 0) {
    // Roll a partial write back to the last committed byte so a retry never
    // produces "half a record, then the whole record". If even the rollback
    // fails, resume-time torn-tail truncation still recovers the file.
    io_->ftruncate(fd_, static_cast<off_t>(committed_));
  }
  return err;
}

bool CampaignJournal::append(const MotBatchItem& item) {
  const std::string record = format_record(item, meta_.baseline);
  std::lock_guard<std::mutex> lk(mu_);
  if (failed_.load(std::memory_order_relaxed) || fd_ < 0) return false;
  RetrySchedule schedule(retry_);
  const std::size_t attempts = retry_.max_attempts == 0 ? 1 : retry_.max_attempts;
  int err = 0;
  for (std::size_t attempt = 1;; ++attempt) {
    err = try_append_locked(record);
    if (err == 0) {
      committed_ += record.size();
      return true;
    }
    if (classify_errno(err) != ErrorClass::Transient || attempt >= attempts) {
      break;
    }
    const std::uint64_t delay = schedule.delay_us(attempt);
    if (delay > 0 && sleep_us_) sleep_us_(delay);
    else if (delay > 0) {
      // Default sleep lives in retry_transient's helper path; inline here to
      // keep the rollback/retry loop in one place.
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
  }
  failure_ = path_ + ": append failed (" +
             std::string(to_string(classify_errno(err))) + "): " +
             std::strerror(err);
  failed_.store(true, std::memory_order_release);
  return false;
}

std::string CampaignJournal::failure() const {
  std::lock_guard<std::mutex> lk(mu_);
  return failure_;
}

}  // namespace motsim
