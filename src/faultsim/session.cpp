#include "faultsim/session.hpp"

#include <cassert>

#include "fault/fault_view.hpp"
#include "logic/eval.hpp"

namespace motsim {

namespace {
constexpr std::size_t kGroup = 63;
}  // namespace

ParallelFaultSession::ParallelFaultSession(const Circuit& circuit,
                                           const std::vector<Fault>& faults)
    : circuit_(&circuit), faults_(&faults) {
  detected_.assign(faults.size(), 0);
  good_state_.assign(circuit.num_dffs(), Val::X);
  for (std::size_t base = 0; base < faults.size(); base += kGroup) {
    Group g;
    g.first = base;
    g.count = std::min(kGroup, faults.size() - base);
    g.state.assign(circuit.num_dffs(), pv_all_x());
    // Fold stem-stuck flip-flop outputs into the initial state.
    for (std::size_t s = 0; s < g.count; ++s) {
      const Fault& f = faults[base + s];
      if (f.pin == kOutputPin) {
        const auto k = circuit.dff_index(f.gate);
        if (k.has_value()) pv_set(g.state[*k], static_cast<unsigned>(s), f.stuck);
      }
    }
    groups_.push_back(std::move(g));
  }
}

void ParallelFaultSession::step_group(Group& group,
                                      const std::vector<Val>& pattern,
                                      const std::vector<Val>& good_outputs) {
  const Circuit& c = *circuit_;
  const Fault* faults = faults_->data() + group.first;
  const std::size_t n = group.count;
  vals_.assign(c.num_gates(), pv_all_x());

  auto scalar_fixup = [&](GateId id) {
    const Gate& g = c.gate(id);
    for (std::size_t s = 0; s < n; ++s) {
      const Fault& f = faults[s];
      if (f.gate != id) continue;
      if (f.pin == kOutputPin) {
        pv_set(vals_[id], static_cast<unsigned>(s), f.stuck);
      } else if (g.type != GateType::Dff) {
        std::vector<Val> ins;
        ins.reserve(g.fanins.size());
        for (std::size_t k = 0; k < g.fanins.size(); ++k) {
          ins.push_back(static_cast<int>(k) == f.pin
                            ? f.stuck
                            : pv_get(vals_[g.fanins[k]], static_cast<unsigned>(s)));
        }
        pv_set(vals_[id], static_cast<unsigned>(s), eval_gate(g.type, ins));
      }
    }
  };

  for (std::size_t k = 0; k < c.num_inputs(); ++k) {
    const GateId pi = c.inputs()[k];
    vals_[pi] = pv_splat(pattern[k]);
    scalar_fixup(pi);
  }
  for (std::size_t k = 0; k < c.num_dffs(); ++k) {
    vals_[c.dffs()[k]] = group.state[k];
  }
  for (GateId id = 0; id < c.num_gates(); ++id) {
    const GateType t = c.gate(id).type;
    if (t == GateType::Const0 || t == GateType::Const1) {
      vals_[id] = pv_splat(t == GateType::Const1 ? Val::One : Val::Zero);
      scalar_fixup(id);
    }
  }
  for (GateId id : c.topo_order()) {
    const Gate& g = c.gate(id);
    const GateId* fanins = g.fanins.data();
    vals_[id] = pv_eval_gate_fn(
        g.type, g.fanins.size(),
        [&](std::size_t k) -> const PVal& { return vals_[fanins[k]]; });
    scalar_fixup(id);
  }

  // Detection against the fault-free outputs of this frame.
  std::uint64_t newly = 0;
  for (std::size_t o = 0; o < c.num_outputs(); ++o) {
    const Val good = good_outputs[o];
    if (!is_specified(good)) continue;
    const PVal& po = vals_[c.outputs()[o]];
    newly |= good == Val::One ? po.zeros : po.ones;
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (((newly >> s) & 1) && !detected_[group.first + s]) {
      detected_[group.first + s] = 1;
      ++detected_count_;
    }
  }

  // Latch next state with D-pin and Q-stem patching.
  for (std::size_t k = 0; k < c.num_dffs(); ++k) {
    const GateId q = c.dffs()[k];
    PVal next = vals_[c.dff_input(k)];
    for (std::size_t s = 0; s < n; ++s) {
      const Fault& f = faults[s];
      if (f.gate == q) pv_set(next, static_cast<unsigned>(s), f.stuck);
    }
    group.state[k] = next;
  }
}

void ParallelFaultSession::apply(const TestSequence& segment) {
  const Circuit& c = *circuit_;
  assert(segment.num_inputs() == c.num_inputs());
  const SequentialSimulator sim(c);
  const FaultView fault_free(c);

  good_vals_.assign(c.num_gates(), Val::X);
  std::vector<Val> good_outputs(c.num_outputs(), Val::X);
  for (std::size_t u = 0; u < segment.length(); ++u) {
    // Advance the fault-free machine one frame.
    for (std::size_t k = 0; k < c.num_inputs(); ++k) {
      good_vals_[c.inputs()[k]] = segment.at(u, k);
    }
    for (std::size_t k = 0; k < c.num_dffs(); ++k) {
      good_vals_[c.dffs()[k]] = good_state_[k];
    }
    sim.eval_frame(good_vals_, fault_free);
    for (std::size_t o = 0; o < c.num_outputs(); ++o) {
      good_outputs[o] = good_vals_[c.outputs()[o]];
    }
    for (std::size_t k = 0; k < c.num_dffs(); ++k) {
      good_state_[k] = good_vals_[c.dff_input(k)];
    }
    // Advance every faulty machine.
    for (Group& g : groups_) step_group(g, segment.pattern(u), good_outputs);
    ++length_;
  }
}

}  // namespace motsim
