#include "faultsim/full_faultsim.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "fault/fault_view.hpp"
#include "logic/pval.hpp"
#include "sim/seq_sim.hpp"
#include "sim/test_sequence.hpp"
#include "util/rng.hpp"
#include "util/sha256.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace motsim {

namespace {

/// name -> index maps for the two sides of a '|' line.
struct NetIndex {
  std::unordered_map<std::string, std::size_t> input;
  std::unordered_map<std::string, std::size_t> output;
};

NetIndex index_nets(const Circuit& c) {
  NetIndex idx;
  for (std::size_t k = 0; k < c.num_inputs(); ++k) {
    idx.input.emplace(c.gate(c.inputs()[k]).name, k);
  }
  for (std::size_t o = 0; o < c.num_outputs(); ++o) {
    idx.output.emplace(c.gate(c.outputs()[o]).name, o);
  }
  return idx;
}

/// Parses one "name=val, name=val" side into `vals` (pre-sized, Val::X =
/// unassigned). Returns false with `error` set on malformed input.
bool parse_assignments(std::string_view side, const char* what,
                       const std::unordered_map<std::string, std::size_t>& index,
                       std::vector<Val>& vals, std::string& error) {
  for (std::string_view item : split(side, ',')) {
    item = trim(item);
    if (item.empty()) {
      error = std::string("empty ") + what + " assignment";
      return false;
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      error = "expected '=' in '" + std::string(item) + "'";
      return false;
    }
    const std::string name(trim(item.substr(0, eq)));
    const std::string_view val = trim(item.substr(eq + 1));
    const auto it = index.find(name);
    if (it == index.end()) {
      error = std::string("unknown ") + what + " net '" + name + "'";
      return false;
    }
    if (val.size() != 1 || (val[0] != '0' && val[0] != '1')) {
      error = "value of '" + name + "' must be 0 or 1, got '" +
              std::string(val) + "'";
      return false;
    }
    if (vals[it->second] != Val::X) {
      error = std::string(what) + " net '" + name + "' assigned twice";
      return false;
    }
    vals[it->second] = val[0] == '1' ? Val::One : Val::Zero;
  }
  return true;
}

}  // namespace

InParseResult parse_conformance_in(std::string_view text, const Circuit& c) {
  InParseResult result;
  const NetIndex idx = index_nets(c);

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view raw = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    const std::string_view line = trim(raw);
    if (line.empty()) continue;

    auto fail = [&](std::string msg) {
      result.ok = false;
      result.error = std::move(msg);
      result.error_line = line_no;
    };

    const std::size_t bar = line.find('|');
    if (bar == std::string_view::npos) {
      fail("expected 'inputs | outputs'");
      return result;
    }
    std::vector<Val> ins(c.num_inputs(), Val::X);
    std::vector<Val> outs(c.num_outputs(), Val::X);
    std::string error;
    if (!parse_assignments(line.substr(0, bar), "input", idx.input, ins, error) ||
        !parse_assignments(line.substr(bar + 1), "output", idx.output, outs,
                           error)) {
      fail(std::move(error));
      return result;
    }
    for (std::size_t k = 0; k < ins.size(); ++k) {
      if (ins[k] == Val::X) {
        fail("input '" + c.gate(c.inputs()[k]).name + "' not assigned");
        return result;
      }
    }
    for (std::size_t o = 0; o < outs.size(); ++o) {
      if (outs[o] == Val::X) {
        fail("output '" + c.gate(c.outputs()[o]).name + "' not assigned");
        return result;
      }
    }
    result.patterns.patterns.push_back(std::move(ins));
    result.patterns.claimed.push_back(std::move(outs));
  }
  if (result.patterns.size() == 0) {
    result.ok = false;
    result.error = "no patterns in file";
    result.error_line = line_no;
    return result;
  }
  result.ok = true;
  return result;
}

InParseResult parse_conformance_in_file(const std::string& path,
                                        const Circuit& c) {
  std::ifstream in(path);
  if (!in) {
    InParseResult r;
    r.error = "cannot open '" + path + "'";
    return r;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_conformance_in(ss.str(), c);
}

std::string write_conformance_in(const Circuit& c,
                                 const ConformancePatterns& pat) {
  std::string out;
  for (std::size_t p = 0; p < pat.size(); ++p) {
    for (std::size_t k = 0; k < c.num_inputs(); ++k) {
      if (k) out += ", ";
      out += c.gate(c.inputs()[k]).name;
      out += '=';
      out += v_to_char(pat.patterns[p][k]);
    }
    out += " | ";
    for (std::size_t o = 0; o < c.num_outputs(); ++o) {
      if (o) out += ", ";
      out += c.gate(c.outputs()[o]).name;
      out += '=';
      out += v_to_char(pat.claimed[p][o]);
    }
    out += '\n';
  }
  return out;
}

namespace {

TestSequence one_frame_test(const Circuit& c, const std::vector<Val>& pattern) {
  TestSequence t(c.num_inputs(), 1);
  for (std::size_t k = 0; k < pattern.size(); ++k) t.set(0, k, pattern[k]);
  return t;
}

/// eq0/eq1 are [gate * P + pattern] flags.
struct EqTable {
  std::vector<std::uint8_t> eq0, eq1;
  explicit EqTable(std::size_t cells) : eq0(cells, 1), eq1(cells, 1) {}
};

std::string claim_mismatch(const Circuit& c, std::size_t p, std::size_t o,
                           Val simulated, Val claimed) {
  return str_format(
      "pattern %zu: fault-free output %s simulates to %c but the .in file "
      "claims %c",
      p, c.gate(c.outputs()[o]).name.c_str(), v_to_char(simulated),
      v_to_char(claimed));
}

/// Reference path: per-(fault, pattern) serial three-valued simulation.
bool run_legacy(const Circuit& c, const ConformancePatterns& pat,
                const FullFaultSimOptions& opts, EqTable& table,
                std::string& error) {
  const std::size_t P = pat.size();
  const std::size_t N = c.num_gates();
  SequentialSimulator sim(c, KernelKind::Legacy);
  std::vector<TestSequence> tests;
  std::vector<SeqTrace> good;
  tests.reserve(P);
  good.reserve(P);
  for (std::size_t p = 0; p < P; ++p) {
    tests.push_back(one_frame_test(c, pat.patterns[p]));
    good.push_back(sim.run(tests.back(), FaultView(c)));
    if (opts.verify_outputs) {
      for (std::size_t o = 0; o < c.num_outputs(); ++o) {
        if (good.back().outputs[0][o] != pat.claimed[p][o]) {
          error = claim_mismatch(c, p, o, good.back().outputs[0][o],
                                 pat.claimed[p][o]);
          return false;
        }
      }
    }
  }
  ThreadPool pool(opts.num_threads);
  pool.parallel_for_dynamic(N, 8, [&](std::size_t b, std::size_t e,
                                      std::size_t /*lane*/) {
    SequentialSimulator lsim(c, KernelKind::Legacy);
    for (GateId g = static_cast<GateId>(b); g < e; ++g) {
      for (const Val stuck : {Val::Zero, Val::One}) {
        const FaultView fv(c, Fault{g, kOutputPin, stuck});
        std::vector<std::uint8_t>& eq =
            stuck == Val::Zero ? table.eq0 : table.eq1;
        for (std::size_t p = 0; p < P; ++p) {
          const SeqTrace tr = lsim.run(tests[p], fv);
          eq[g * P + p] = tr.outputs[0] == good[p].outputs[0] ? 1 : 0;
        }
      }
    }
  });
  return true;
}

/// Lanes where a and b differ as three-valued values (not just conflict:
/// X vs 0 counts as different, matching the Legacy path's Val equality).
inline std::uint64_t pv_diff_mask(const PVal& a, const PVal& b) {
  return (a.ones ^ b.ones) | (a.zeros ^ b.zeros);
}

/// Packed path: 64 patterns per lane over the levelized order.
bool run_soa(const Circuit& c, const ConformancePatterns& pat,
             const FullFaultSimOptions& opts, EqTable& table,
             std::string& error) {
  const std::size_t P = pat.size();
  const std::size_t N = c.num_gates();
  const LevelizedCircuit& lv = c.levelized();
  const std::vector<GateId>& order = lv.order();
  ThreadPool pool(opts.num_threads);
  std::vector<std::vector<PVal>> scratch(pool.num_threads());

  for (std::size_t b0 = 0; b0 < P; b0 += 64) {
    const unsigned lanes = static_cast<unsigned>(std::min<std::size_t>(64, P - b0));
    const std::uint64_t lane_mask =
        lanes == 64 ? ~0ull : ((1ull << lanes) - 1);

    // Fault-free sweep for this block of patterns.
    std::vector<PVal> pgood(N);
    for (std::size_t k = 0; k < c.num_inputs(); ++k) {
      PVal v;
      for (unsigned l = 0; l < lanes; ++l) {
        pv_set(v, l, pat.patterns[b0 + l][k]);
      }
      pgood[c.inputs()[k]] = v;
    }
    for (GateId g : order) {
      const GateId* fi = lv.fanins(g);
      pgood[g] = pv_eval_gate_fn(lv.type(g), lv.fanin_count(g),
                                 [&](std::size_t k) { return pgood[fi[k]]; });
    }
    if (opts.verify_outputs) {
      for (std::size_t o = 0; o < c.num_outputs(); ++o) {
        const PVal& v = pgood[c.outputs()[o]];
        for (unsigned l = 0; l < lanes; ++l) {
          if (pv_get(v, l) != pat.claimed[b0 + l][o]) {
            error = claim_mismatch(c, b0 + l, o, pv_get(v, l),
                                   pat.claimed[b0 + l][o]);
            return false;
          }
        }
      }
    }

    // One packed resweep per fault, restarted at the level above the fault
    // site: gates at or below the site's level cannot read it, so their
    // fault-free values are exact.
    pool.parallel_for_dynamic(N, 16, [&](std::size_t b, std::size_t e,
                                         std::size_t lane) {
      std::vector<PVal>& pf = scratch[lane];
      for (GateId g = static_cast<GateId>(b); g < e; ++g) {
        const std::uint32_t start_level = lv.level(g) + 1;
        const std::size_t start = start_level <= lv.num_levels()
                                      ? lv.level_off(start_level)
                                      : order.size();
        for (const Val stuck : {Val::Zero, Val::One}) {
          pf = pgood;
          pf[g] = pv_splat(stuck);
          for (std::size_t i = start; i < order.size(); ++i) {
            const GateId o = order[i];
            const GateId* fi = lv.fanins(o);
            pf[o] = pv_eval_gate_fn(lv.type(o), lv.fanin_count(o),
                                    [&](std::size_t k) { return pf[fi[k]]; });
          }
          std::uint64_t neq = 0;
          for (const GateId po : c.outputs()) {
            neq |= pv_diff_mask(pgood[po], pf[po]);
          }
          neq &= lane_mask;
          std::vector<std::uint8_t>& eq =
              stuck == Val::Zero ? table.eq0 : table.eq1;
          for (unsigned l = 0; l < lanes; ++l) {
            eq[g * P + (b0 + l)] = (neq >> l) & 1 ? 0 : 1;
          }
        }
      }
    });
  }
  return true;
}

}  // namespace

FullFaultSimResult run_full_faultsim(const Circuit& c,
                                     const ConformancePatterns& pat,
                                     const FullFaultSimOptions& opts) {
  FullFaultSimResult result;
  if (c.num_dffs() != 0) {
    result.error = "'" + c.name() +
                   "' is sequential; full fault simulation covers the "
                   "combinational path only";
    return result;
  }
  if (pat.size() == 0) {
    result.error = "no patterns";
    return result;
  }
  const std::size_t P = pat.size();
  const std::size_t N = c.num_gates();
  EqTable table(N * P);
  std::string error;
  const bool ok = opts.kernel == KernelKind::Legacy
                      ? run_legacy(c, pat, opts, table, error)
                      : run_soa(c, pat, opts, table, error);
  if (!ok) {
    result.error = std::move(error);
    return result;
  }

  std::string& ans = result.ans;
  ans.reserve(N * P * 16);
  for (std::size_t p = 0; p < P; ++p) {
    const std::string prefix = std::to_string(p) + ' ';
    for (GateId g = 0; g < N; ++g) {
      ans += prefix;
      ans += c.gate(g).name;
      ans += ' ';
      ans += static_cast<char>('0' + table.eq0[g * P + p]);
      ans += ' ';
      ans += static_cast<char>('0' + table.eq1[g * P + p]);
      ans += '\n';
    }
  }
  result.ans_sha256 = sha256_hex(ans);
  result.ok = true;
  return result;
}

ConformancePatterns generate_conformance_patterns(const Circuit& c,
                                                  std::size_t count,
                                                  std::uint64_t seed) {
  ConformancePatterns pat;
  Rng rng(seed);
  SequentialSimulator sim(c, KernelKind::Legacy);
  for (std::size_t p = 0; p < count; ++p) {
    std::vector<Val> ins(c.num_inputs());
    for (Val& v : ins) v = rng.next_below(2) ? Val::One : Val::Zero;
    const SeqTrace tr = sim.run(one_frame_test(c, ins), FaultView(c));
    pat.patterns.push_back(std::move(ins));
    pat.claimed.push_back(tr.outputs[0]);
  }
  return pat;
}

}  // namespace motsim
