#include "faultsim/supervisor.hpp"

#include <dirent.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "faultsim/checkpoint.hpp"
#include "faultsim/shard.hpp"
#include "util/socket.hpp"
#include "util/subprocess.hpp"

namespace motsim {

namespace sp = subprocess;

namespace {

constexpr std::size_t kNoFault = static_cast<std::size_t>(-1);

/// Everything a forked worker needs. All of it lives in the coordinator's
/// address space and reaches the child through fork's copy-on-write pages —
/// nothing (circuit, test, options) is ever serialized.
struct WorkerContext {
  const Circuit* circuit = nullptr;
  const TestSequence* test = nullptr;
  const SeqTrace* good = nullptr;
  const std::vector<Fault>* faults = nullptr;
  MotOptions options;  // num_threads/campaign_time_ms already zeroed
  bool run_baseline = false;
  JournalMeta meta;
  std::string shard_path;  // "" = no shard journaling
  std::uint64_t heartbeat_period_ms = 0;
  std::size_t incarnation = 0;
  std::uint64_t chaos_kill_permille = 0;
  std::uint64_t chaos_kill_seed = 0;
  std::size_t chaos_abort_fault = kNoFault;
};

int poll_one(int fd, int timeout_ms) {
  struct pollfd p = {fd, POLLIN, 0};
  while (true) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r >= 0) return r;
    if (errno == EINTR) return 0;  // let the caller re-check stop conditions
    return -1;
  }
}

/// The worker process body: serve Assign frames until Shutdown/EOF.
/// Runs after fork; must never return into the forked copy of the
/// coordinator's stack (spawn() _exits with the return value).
int worker_main(int cmd_fd, int res_fd, const WorkerContext& ctx) {
  // The coordinator owns terminal signals; a Ctrl-C must stop the campaign
  // through the coordinator's clean-shutdown path, not kill workers ahead
  // of their final results. SIGTERM drops any handler inherited from the
  // CLI (whose CancelToken means nothing here). SIGPIPE on a dead
  // coordinator becomes EPIPE, which exits the loop below.
  ::signal(SIGINT, SIG_IGN);
  ::signal(SIGTERM, SIG_DFL);
  ::signal(SIGPIPE, SIG_IGN);

  MotOptions opt = ctx.options;
  const MotBatchRunner runner(*ctx.circuit, opt, ctx.run_baseline);

  std::unique_ptr<CampaignJournal> shard;
  if (!ctx.shard_path.empty()) {
    // Shard journaling is belt-and-braces on top of the pipe; a worker that
    // cannot create its shard still contributes via frames alone.
    std::string err;
    shard = CampaignJournal::create(ctx.shard_path, ctx.meta, err);
  }

  std::mutex write_mu;
  auto send = [&](shard::MsgType type, std::string_view payload) {
    std::lock_guard<std::mutex> lk(write_mu);
    return sp::write_frame(res_fd, static_cast<std::uint8_t>(type), payload);
  };

  std::atomic<bool> stop{false};
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  std::thread heartbeat;
  if (ctx.heartbeat_period_ms > 0) {
    // Sleeps until the next beat is due instead of polling a short tick:
    // zero wakeups between beats, and shutdown interrupts the wait via the
    // condition variable rather than waiting out the period.
    heartbeat = std::thread([&] {
      const auto period = std::chrono::milliseconds(ctx.heartbeat_period_ms);
      std::unique_lock<std::mutex> lk(hb_mu);
      auto next = std::chrono::steady_clock::now() + period;
      while (!hb_cv.wait_until(lk, next, [&] {
        return stop.load(std::memory_order_relaxed);
      })) {
        if (send(shard::MsgType::Heartbeat, "") != 0) break;
        next = std::chrono::steady_clock::now() + period;
      }
    });
  }

  sp::FrameReader reader(cmd_fd);
  // Blocks until a frame arrives (or EOF/corruption). Returns false when
  // the worker should exit.
  auto next_frame = [&](std::uint8_t& type, std::string& payload) {
    while (true) {
      if (reader.next(type, payload)) return true;
      if (reader.corrupt()) return false;
      if (poll_one(cmd_fd, -1) < 0) return false;
      int err = 0;
      const auto fs = reader.feed(err);
      if (fs == sp::FrameReader::FeedStatus::Eof ||
          fs == sp::FrameReader::FeedStatus::Error) {
        return false;
      }
    }
  };
  // Non-blocking peek between faults: true when a Shutdown is pending.
  auto shutdown_pending = [&] {
    while (true) {
      std::uint8_t type = 0;
      std::string payload;
      if (reader.next(type, payload)) {
        if (static_cast<shard::MsgType>(type) == shard::MsgType::Shutdown) {
          return true;
        }
        continue;  // unexpected mid-group frame; ignore
      }
      if (reader.corrupt()) return true;
      if (poll_one(cmd_fd, 0) <= 0) return false;
      int err = 0;
      const auto fs = reader.feed(err);
      if (fs == sp::FrameReader::FeedStatus::Eof ||
          fs == sp::FrameReader::FeedStatus::Error) {
        return true;
      }
      if (fs == sp::FrameReader::FeedStatus::WouldBlock) return false;
    }
  };

  bool exiting = false;
  std::vector<std::size_t> group;
  while (!exiting) {
    std::uint8_t type = 0;
    std::string payload;
    if (!next_frame(type, payload)) break;
    switch (static_cast<shard::MsgType>(type)) {
      case shard::MsgType::Shutdown:
        exiting = true;
        break;
      case shard::MsgType::Assign: {
        if (!shard::decode_assign(payload, group)) {
          exiting = true;  // protocol violation; die visibly, not wrongly
          break;
        }
        for (const std::size_t k : group) {
          if (shutdown_pending()) {
            exiting = true;
            break;
          }
          if (send(shard::MsgType::FaultStart,
                   shard::encode_fault_start(k)) != 0) {
            exiting = true;
            break;
          }
          // Chaos hooks (tests only): die exactly where a segfaulting
          // engine would — after announcing the fault, before its result.
          if (k == ctx.chaos_abort_fault ||
              shard::chaos_should_kill(ctx.chaos_kill_seed, k,
                                       ctx.incarnation,
                                       ctx.chaos_kill_permille)) {
            ::raise(SIGKILL);
          }
          const std::size_t one[] = {k};
          const std::vector<MotBatchItem> out =
              runner.run(*ctx.test, *ctx.good, *ctx.faults, one);
          if (shard) shard->append(out[0]);
          const std::string record =
              encode_journal_record(out[0], ctx.run_baseline);
          if (send(shard::MsgType::FaultResult, record) != 0) {
            exiting = true;
            break;
          }
        }
        if (!exiting && send(shard::MsgType::GroupDone, "") != 0) {
          exiting = true;
        }
        break;
      }
      default:
        break;  // coordinator never sends other types; ignore
    }
  }
  {
    std::lock_guard<std::mutex> lk(hb_mu);
    stop.store(true, std::memory_order_relaxed);
  }
  hb_cv.notify_all();
  if (heartbeat.joinable()) heartbeat.join();
  return 0;
}

/// Coordinator-side view of one worker slot. Local mode fills `child` (a
/// forked process reached over pipes); remote mode fills `chan` (a TCP
/// connection that passed the handshake). Everything else — assignment,
/// outstanding-fault accounting, liveness timestamps, incarnation fencing —
/// is transport-agnostic.
struct Slot {
  sp::ChildHandles child;
  std::unique_ptr<netio::ByteChannel> chan;  // remote transport (null = pipe)
  std::unique_ptr<sp::FrameReader> reader;
  bool alive = false;
  std::size_t incarnation = 0;  // lives started on this slot so far
  std::vector<std::size_t> group;            // current assignment, in order
  std::unordered_set<std::size_t> outstanding;  // not yet committed
  std::size_t in_flight = kNoFault;
  std::uint64_t last_frame_ms = 0;
  std::uint64_t group_assigned_ms = 0;
  bool shutdown_sent = false;
  bool respawn_pending = false;
  std::uint64_t respawn_at_ms = 0;

  bool idle() const { return alive && group.empty(); }
};

/// A TCP connection that has been accepted but not yet welcomed into a
/// slot — it has until `deadline_ms` to present a valid Hello.
struct PendingConn {
  std::unique_ptr<netio::SocketChannel> chan;
  std::unique_ptr<sp::FrameReader> reader;
  std::uint64_t deadline_ms = 0;
};

}  // namespace

std::string worker_shard_path(const std::string& journal_path,
                              std::size_t slot) {
  if (journal_path.empty()) return {};
  return journal_path + ".w" + std::to_string(slot);
}

SupervisedMotRunner::SupervisedMotRunner(const Circuit& c, MotOptions options,
                                         bool run_baseline,
                                         SupervisorOptions sup)
    : circuit_(&c),
      options_(options),
      run_baseline_(run_baseline),
      sup_(sup) {}

std::vector<MotBatchItem> SupervisedMotRunner::run(
    const TestSequence& test, const SeqTrace& good,
    const std::vector<Fault>& faults, std::span<const std::size_t> indices,
    CampaignJournal* journal, const CancelToken* cancel,
    SupervisorStats* stats) const {
  SupervisorStats local;
  if (stats == nullptr) stats = &local;
  std::vector<MotBatchItem> items(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    items[i].fault_index = indices[i];
  }
  if (indices.empty()) return items;

  const std::size_t workers = std::max<std::size_t>(sup_.workers, 1);
  const std::string jpath = journal != nullptr ? journal->path() : "";
  const bool remote = sup_.listen_fd >= 0;
  // The campaign identity remote workers must prove in their Hello. With a
  // journal this is its meta verbatim; without one it is assembled from the
  // same ingredients, so the two modes admit exactly the same workers.
  const JournalMeta expected_meta =
      journal != nullptr ? journal->meta()
                         : make_journal_meta(circuit_->name(), faults.size(),
                                             test, options_, run_baseline_);

  // A worker writing into a vanished coordinator (or vice versa) must see
  // EPIPE, not die of SIGPIPE mid-supervision.
  struct sigaction ignore_pipe = {};
  ignore_pipe.sa_handler = SIG_IGN;
  struct sigaction old_pipe = {};
  ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

  std::unordered_map<std::size_t, std::size_t> pos;
  pos.reserve(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) pos[indices[i]] = i;

  std::vector<char> done(indices.size(), 0);
  auto commit = [&](const MotBatchItem& item) {
    const auto it = pos.find(item.fault_index);
    if (it == pos.end() || done[it->second]) return false;
    items[it->second] = item;
    done[it->second] = 1;
    if (journal != nullptr) journal->append(item);
    return true;
  };

  // Resume: outcomes the journal already holds are merged, never re-run.
  std::vector<std::size_t> pending;
  pending.reserve(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t k = indices[i];
    if (journal != nullptr) {
      if (const MotBatchItem* rec = journal->lookup(k)) {
        items[i] = *rec;
        done[i] = 1;
        continue;
      }
    }
    pending.push_back(k);
  }

  // Harvest orphaned journal shards from a previous run whose coordinator
  // died: every record a worker committed before the lights went out is
  // merged into the main journal now, before any simulation.
  if (journal != nullptr && !pending.empty()) {
    const std::size_t slash = jpath.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : jpath.substr(0, slash);
    const std::string prefix =
        (slash == std::string::npos ? jpath : jpath.substr(slash + 1)) + ".w";
    std::vector<std::string> orphans;
    if (DIR* d = ::opendir(dir.c_str())) {
      while (const struct dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name.size() <= prefix.size() ||
            name.compare(0, prefix.size(), prefix) != 0) {
          continue;
        }
        const std::string tail = name.substr(prefix.size());
        if (tail.find_first_not_of("0123456789") != std::string::npos) continue;
        orphans.push_back(dir + "/" + name);
      }
      ::closedir(d);
    }
    for (const std::string& orphan : orphans) {
      std::string err;
      const auto shard_journal =
          CampaignJournal::open_resume(orphan, journal->meta(), err);
      if (shard_journal == nullptr) continue;  // stale or foreign; overwritten
      for (const std::size_t k : pending) {
        if (const MotBatchItem* rec = shard_journal->lookup(k)) {
          if (commit(*rec)) ++stats->harvested_records;
        }
      }
    }
    std::erase_if(pending, [&](std::size_t k) { return done[pos[k]]; });
  }

  std::deque<std::vector<std::size_t>> queue;
  for (auto& g : shard::plan_fault_groups(pending, workers, sup_.group_size)) {
    queue.push_back(std::move(g));
  }

  const Deadline campaign = Deadline::after_ms(options_.campaign_time_ms);
  std::unordered_map<std::size_t, std::size_t> attempts;
  std::vector<Slot> slots(workers);
  std::size_t restarts_used = 0;
  RetrySchedule restart_schedule(sup_.restart_backoff);
  bool stopping = false;
  std::uint64_t stop_deadline_ms = 0;
  // Remote fleet-loss clock: while no worker is connected, the campaign is
  // declared lost once this passes. Starts as the join window; every
  // disconnect pushes it out by the rejoin window.
  std::uint64_t fleet_deadline_ms = sp::steady_now_ms() + sup_.remote_join_ms;
  std::vector<PendingConn> pending_conns;
  if (remote) sp::set_nonblocking(sup_.listen_fd);

  WorkerContext base_ctx;
  base_ctx.circuit = circuit_;
  base_ctx.test = &test;
  base_ctx.good = &good;
  base_ctx.faults = &faults;
  base_ctx.options = options_;
  // Workers are serial lanes: parallelism is the process count, and the
  // campaign-level deadline belongs to the coordinator alone.
  base_ctx.options.num_threads = 1;
  base_ctx.options.campaign_time_ms = 0;
  base_ctx.run_baseline = run_baseline_;
  if (journal != nullptr) base_ctx.meta = journal->meta();
  base_ctx.heartbeat_period_ms =
      sup_.heartbeat_ms == 0
          ? 0
          : std::max<std::uint64_t>(sup_.heartbeat_ms / 4, 20);
  base_ctx.chaos_kill_permille = sup_.chaos_kill_permille;
  base_ctx.chaos_kill_seed = sup_.chaos_kill_seed;
  base_ctx.chaos_abort_fault = sup_.chaos_abort_fault;

  auto spawn_slot = [&](std::size_t s) {
    Slot& slot = slots[s];
    WorkerContext ctx = base_ctx;
    ctx.shard_path = worker_shard_path(jpath, s);
    ctx.incarnation = slot.incarnation;
    std::vector<int> close_in_child;
    for (std::size_t o = 0; o < slots.size(); ++o) {
      if (o == s || !slots[o].alive) continue;
      close_in_child.push_back(slots[o].child.command_fd);
      close_in_child.push_back(slots[o].child.result_fd);
    }
    const int err = sp::spawn(
        [ctx](int cmd_fd, int res_fd) {
          return worker_main(cmd_fd, res_fd, ctx);
        },
        close_in_child, slot.child);
    if (err != 0) return false;
    sp::set_nonblocking(slot.child.result_fd);
    slot.reader = std::make_unique<sp::FrameReader>(slot.child.result_fd);
    slot.alive = true;
    ++slot.incarnation;
    slot.group.clear();
    slot.outstanding.clear();
    slot.in_flight = kNoFault;
    slot.shutdown_sent = false;
    slot.respawn_pending = false;
    slot.last_frame_ms = sp::steady_now_ms();
    return true;
  };

  auto close_slot_fds = [&](Slot& slot) {
    slot.reader.reset();  // before the channel it reads from
    if (slot.chan != nullptr) {
      slot.chan->close();
      slot.chan.reset();
    }
    if (slot.child.command_fd >= 0) ::close(slot.child.command_fd);
    if (slot.child.result_fd >= 0) ::close(slot.child.result_fd);
    slot.child.command_fd = -1;
    slot.child.result_fd = -1;
  };

  /// One frame to a slot's worker, whichever transport it sits behind.
  auto slot_write = [&](Slot& slot, shard::MsgType type,
                        std::string_view payload) {
    if (slot.chan != nullptr) {
      return sp::write_frame(*slot.chan, static_cast<std::uint8_t>(type),
                             payload);
    }
    return sp::write_frame(slot.child.command_fd,
                           static_cast<std::uint8_t>(type), payload);
  };

  auto assign_group = [&](Slot& slot, std::vector<std::size_t> group) {
    slot.group = std::move(group);
    slot.outstanding.clear();
    slot.outstanding.insert(slot.group.begin(), slot.group.end());
    slot.in_flight = kNoFault;
    slot.group_assigned_ms = sp::steady_now_ms();
    const int err = slot_write(slot, shard::MsgType::Assign,
                               shard::encode_assign(slot.group));
    if (err != 0) {
      // The worker is dying or dead; the reap path below recovers the group.
      return false;
    }
    return true;
  };

  /// Shared recovery path for every kind of worker death. `status_token`
  /// is the one-token evidence (wait status and/or supervision cause)
  /// recorded against a fault this death poisons.
  auto handle_death = [&](std::size_t s, const std::string& status_token) {
    Slot& slot = slots[s];
    slot.alive = false;
    close_slot_fds(slot);
    ++stats->worker_deaths;

    // Harvest the shard journal first: results the worker committed to disk
    // but never got to stream are merged, not re-simulated. (Remote workers
    // have no shard on this filesystem — their equivalent is the in-memory
    // replay log they re-stream after reconnecting.)
    const std::string shard_path = remote ? "" : worker_shard_path(jpath, s);
    if (!shard_path.empty() && !slot.outstanding.empty() &&
        journal != nullptr) {
      std::string err;
      if (const auto shard_journal =
              CampaignJournal::open_resume(shard_path, journal->meta(), err)) {
        for (const std::size_t k : slot.group) {
          if (slot.outstanding.count(k) == 0) continue;
          if (const MotBatchItem* rec = shard_journal->lookup(k)) {
            if (commit(*rec)) ++stats->harvested_records;
            slot.outstanding.erase(k);
            if (slot.in_flight == k) slot.in_flight = kNoFault;
          }
        }
      }
    }

    // Charge the death to the fault that was in flight — and only to it.
    if (slot.in_flight != kNoFault &&
        slot.outstanding.count(slot.in_flight) != 0) {
      const std::size_t k = slot.in_flight;
      const std::size_t tries = ++attempts[k];
      if (tries >= sup_.max_fault_attempts) {
        MotBatchItem poison;
        poison.fault_index = k;
        poison.completed = true;
        poison.mot.unresolved = UnresolvedReason::EngineError;
        poison.error = sanitize_token("worker_killed_" + status_token +
                                      "_attempts_" + std::to_string(tries));
        if (run_baseline_) {
          poison.baseline.aborted = true;
          poison.baseline.unresolved = UnresolvedReason::EngineError;
        }
        commit(poison);
        ++stats->poisoned_faults;
        slot.outstanding.erase(k);
      }
    }

    // Requeue the rest of the group (input order preserved) for survivors.
    std::vector<std::size_t> requeue;
    for (const std::size_t k : slot.group) {
      if (slot.outstanding.count(k) != 0) requeue.push_back(k);
    }
    if (!requeue.empty()) {
      stats->requeued_faults += requeue.size();
      queue.push_front(std::move(requeue));
    }
    slot.group.clear();
    slot.outstanding.clear();
    slot.in_flight = kNoFault;

    if (!stopping) {
      if (!remote && restarts_used < sup_.max_worker_restarts) {
        ++restarts_used;
        slot.respawn_pending = true;
        slot.respawn_at_ms =
            sp::steady_now_ms() +
            restart_schedule.delay_us(restarts_used) / 1000;
      }
      if (remote) {
        // Hold the campaign open for a reconnect: the worker (or a fresh
        // one) may rejoin within the window. Admission charges the restart
        // budget; this only keeps the door open.
        fleet_deadline_ms =
            std::max(fleet_deadline_ms,
                     sp::steady_now_ms() + sup_.remote_rejoin_ms);
      }
    }
  };

  auto kill_and_reap = [&](std::size_t s, const char* cause) {
    Slot& slot = slots[s];
    if (slot.chan != nullptr) {
      // No SIGKILL across a network. Closing the connection *is* the kill:
      // it fences this incarnation off — its late frames land on a closed
      // socket — and the worker, if actually alive, rejoins as a fresh
      // incarnation through the handshake.
      handle_death(s, std::string(cause) + "_fenced");
      return;
    }
    ::kill(slot.child.pid, SIGKILL);
    int status = 0;
    sp::wait_blocking(slot.child.pid, status);
    handle_death(s, std::string(cause) + "_" +
                        sp::describe_wait_status(status));
  };

  auto request_shutdown = [&](Slot& slot) {
    if (!slot.alive || slot.shutdown_sent) return;
    slot.shutdown_sent = true;
    slot_write(slot, shard::MsgType::Shutdown, "");
  };

  auto reject_conn = [&](PendingConn& pc, std::string_view reason) {
    sp::write_frame(*pc.chan, static_cast<std::uint8_t>(shard::MsgType::Reject),
                    reason);
    pc.chan->close();
  };

  /// Welcomes a handshaken connection into a worker slot. First lives of a
  /// slot are free (they are the initial fleet); re-filling a used slot is a
  /// restart and spends the max_worker_restarts budget like a local respawn.
  auto admit_conn = [&](PendingConn& pc) {
    std::size_t chosen = kNoFault;
    bool rejoin = false;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (!slots[s].alive && slots[s].incarnation == 0) {
        chosen = s;
        break;
      }
    }
    if (chosen == kNoFault) {
      for (std::size_t s = 0; s < slots.size(); ++s) {
        if (!slots[s].alive) {
          chosen = s;
          rejoin = true;
          break;
        }
      }
    }
    if (chosen == kNoFault) {
      // Transient by design: the worker retries after backoff, by which
      // time the dead incarnation's EOF has usually been processed.
      reject_conn(pc, "no_free_slot");
      return;
    }
    if (rejoin) {
      if (restarts_used >= sup_.max_worker_restarts) {
        reject_conn(pc, "restart_budget_spent");
        return;
      }
      ++restarts_used;
      ++stats->worker_restarts;
    }
    Slot& slot = slots[chosen];
    shard::WelcomeInfo info;
    info.slot = chosen;
    info.incarnation = slot.incarnation;
    info.heartbeat_period_ms = sup_.heartbeat_ms == 0
                                   ? 0
                                   : std::max<std::uint64_t>(
                                         sup_.heartbeat_ms / 4, 20);
    if (sp::write_frame(*pc.chan,
                        static_cast<std::uint8_t>(shard::MsgType::Welcome),
                        shard::encode_welcome(info)) != 0) {
      pc.chan->close();
      return;
    }
    ++slot.incarnation;
    slot.chan = std::move(pc.chan);
    slot.reader = std::move(pc.reader);
    slot.alive = true;
    slot.group.clear();
    slot.outstanding.clear();
    slot.in_flight = kNoFault;
    slot.shutdown_sent = false;
    slot.respawn_pending = false;
    slot.last_frame_ms = sp::steady_now_ms();
  };

  /// Accepts fresh connections and advances every pending handshake. A
  /// connection becomes a worker only through a Hello whose meta matches
  /// this campaign exactly.
  auto serve_handshakes = [&] {
    while (true) {
      int aerr = 0;
      const int cfd = netio::tcp_accept(sup_.listen_fd, aerr);
      if (cfd < 0) break;  // EAGAIN (nothing pending) or a transient error
      if (pending_conns.size() >= 64) {
        ::close(cfd);  // flood guard: the worker retries with backoff
        continue;
      }
      auto ch = std::make_unique<netio::SocketChannel>(cfd);
      ch->set_nonblocking();
      PendingConn pc;
      pc.reader = std::make_unique<sp::FrameReader>(*ch);
      pc.chan = std::move(ch);
      pc.deadline_ms = sp::steady_now_ms() + 5000;
      pending_conns.push_back(std::move(pc));
    }
    for (auto it = pending_conns.begin(); it != pending_conns.end();) {
      PendingConn& pc = *it;
      bool resolved = false;
      while (!resolved) {
        std::uint8_t type = 0;
        std::string payload;
        if (pc.reader->next(type, payload)) {
          if (static_cast<shard::MsgType>(type) != shard::MsgType::Hello) {
            continue;  // pre-Hello noise; the deadline bounds patience
          }
          JournalMeta hello_meta;
          if (!shard::decode_hello(payload, hello_meta) ||
              !(hello_meta == expected_meta)) {
            reject_conn(pc, "campaign_mismatch");
          } else if (stopping) {
            reject_conn(pc, "stopping");
          } else {
            admit_conn(pc);
          }
          resolved = true;
          break;
        }
        if (pc.reader->corrupt()) {
          pc.chan->close();
          resolved = true;
          break;
        }
        int err = 0;
        switch (pc.reader->feed(err)) {
          case sp::FrameReader::FeedStatus::Data:
            continue;
          case sp::FrameReader::FeedStatus::WouldBlock:
            break;
          case sp::FrameReader::FeedStatus::Eof:
          case sp::FrameReader::FeedStatus::Error:
            pc.chan->close();
            resolved = true;
            break;
        }
        if (!resolved) break;  // WouldBlock: try again next tick
      }
      if (!resolved && sp::steady_now_ms() >= pc.deadline_ms) {
        pc.chan->close();  // never said Hello; not a worker
        resolved = true;
      }
      it = resolved ? pending_conns.erase(it) : std::next(it);
    }
  };

  /// Drains and dispatches every complete frame from one worker. Returns
  /// false when the stream ended (EOF/error/corruption) — worker death.
  auto drain_frames = [&](std::size_t s) {
    Slot& slot = slots[s];
    while (true) {
      std::uint8_t type = 0;
      std::string payload;
      while (slot.reader->next(type, payload)) {
        slot.last_frame_ms = sp::steady_now_ms();
        switch (static_cast<shard::MsgType>(type)) {
          case shard::MsgType::FaultStart: {
            std::size_t k = kNoFault;
            if (shard::decode_fault_start(payload, k)) slot.in_flight = k;
            break;
          }
          case shard::MsgType::FaultResult: {
            MotBatchItem item;
            if (decode_journal_record(payload, run_baseline_, item)) {
              commit(item);
              slot.outstanding.erase(item.fault_index);
              if (slot.in_flight == item.fault_index) slot.in_flight = kNoFault;
            }
            break;
          }
          case shard::MsgType::GroupDone:
            // Defensive: anything the worker skipped goes back to the pool.
            if (!slot.outstanding.empty()) {
              std::vector<std::size_t> leftover;
              for (const std::size_t k : slot.group) {
                if (slot.outstanding.count(k) != 0) leftover.push_back(k);
              }
              queue.push_front(std::move(leftover));
            }
            slot.group.clear();
            slot.outstanding.clear();
            slot.in_flight = kNoFault;
            break;
          case shard::MsgType::Heartbeat:
            break;
          default:
            break;
        }
      }
      if (slot.reader->corrupt()) return false;
      int err = 0;
      switch (slot.reader->feed(err)) {
        case sp::FrameReader::FeedStatus::Data:
          continue;
        case sp::FrameReader::FeedStatus::WouldBlock:
          return true;
        case sp::FrameReader::FeedStatus::Eof:
        case sp::FrameReader::FeedStatus::Error:
          return false;
      }
    }
  };

  // Initial fleet: one worker per slot, capped by the number of groups —
  // idle processes would only dilute the kill/restart accounting. Remote
  // mode forks nothing: slots fill as workers connect and handshake.
  if (!remote) {
    const std::size_t initial =
        std::min<std::size_t>(workers, std::max<std::size_t>(queue.size(), 1));
    for (std::size_t s = 0; s < initial && !queue.empty(); ++s) {
      if (!spawn_slot(s)) continue;
      assign_group(slots[s], std::move(queue.front()));
      queue.pop_front();
    }
  }

  // ------------------------- supervision loop -------------------------
  while (true) {
    const std::uint64_t now = sp::steady_now_ms();

    if (!stopping &&
        ((cancel != nullptr && cancel->cancelled()) || campaign.expired() ||
         (journal != nullptr && journal->failed()))) {
      stopping = true;
      stop_deadline_ms = now + sup_.shutdown_grace_ms;
      for (Slot& slot : slots) request_shutdown(slot);
    }

    bool any_live = false;
    bool any_busy = false;
    bool any_respawn = false;
    for (const Slot& slot : slots) {
      any_live |= slot.alive;
      any_busy |= slot.alive && !slot.group.empty();
      any_respawn |= slot.respawn_pending;
    }

    if (!stopping) {
      if (queue.empty() && !any_busy) break;  // campaign complete
      if (!remote && !any_live && !any_respawn) {
        // Every worker is dead and the restart budget is spent: surrender
        // the remainder as incomplete (resumable), never hang.
        for (const auto& g : queue) stats->lost_faults += g.size();
        break;
      }
      if (remote && !any_live && now >= fleet_deadline_ms) {
        // No worker connected within the join window (or reconnected within
        // the rejoin window): the fleet is lost; same surrender as above.
        for (const auto& g : queue) stats->lost_faults += g.size();
        break;
      }
    } else {
      if (!any_live || now >= stop_deadline_ms) break;
    }

    // Respawns that have served their backoff (local), then admissions
    // (remote), then stealing — so a worker that joined this very tick can
    // claim work this very tick.
    if (!stopping) {
      if (!remote) {
        for (std::size_t s = 0; s < slots.size(); ++s) {
          if (!slots[s].respawn_pending || now < slots[s].respawn_at_ms) {
            continue;
          }
          slots[s].respawn_pending = false;
          if (queue.empty() && !any_busy) continue;  // nothing left to do
          if (spawn_slot(s)) ++stats->worker_restarts;
        }
      }
    }
    if (remote) serve_handshakes();
    if (!stopping) {
      // Work stealing: idle survivors immediately claim requeued groups.
      for (Slot& slot : slots) {
        if (queue.empty()) break;
        if (!slot.idle()) continue;
        assign_group(slot, std::move(queue.front()));
        queue.pop_front();
      }
    }

    // Wait for worker traffic (bounded so timeouts and respawns progress).
    std::vector<struct pollfd> fds;
    std::vector<std::size_t> fd_slot;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (!slots[s].alive) continue;
      fds.push_back({slots[s].reader->fd(), POLLIN, 0});
      fd_slot.push_back(s);
    }
    if (!fds.empty()) {
      const int r = ::poll(fds.data(), fds.size(), 20);
      if (r < 0 && errno != EINTR) break;  // coordinator fd table is broken
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    // Frames, then reaping: a worker that exited cleanly after streaming
    // its last result must have that result committed before the reap.
    for (std::size_t f = 0; f < fds.size(); ++f) {
      const std::size_t s = fd_slot[f];
      if (!slots[s].alive) continue;
      if ((fds[f].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (!drain_frames(s)) {
        if (slots[s].chan != nullptr) {
          // Remote disconnect. During teardown it is the expected goodbye;
          // mid-campaign it is a death (even an idle worker's vanishing
          // matters: the rejoin window must open and the stats must show it).
          if (stopping) {
            slots[s].alive = false;
            close_slot_fds(slots[s]);
          } else {
            handle_death(s, "disconnect");
          }
          continue;
        }
        int status = 0;
        sp::wait_blocking(slots[s].child.pid, status);
        if (stopping || (sp::exited_cleanly(status) &&
                         slots[s].outstanding.empty())) {
          // Expected exit (shutdown or post-work EOF): not a death.
          slots[s].alive = false;
          close_slot_fds(slots[s]);
        } else {
          handle_death(s, sp::describe_wait_status(status));
        }
      }
    }
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (!slots[s].alive || slots[s].chan != nullptr) continue;
      int status = 0;
      if (sp::try_wait(slots[s].child.pid, status) == 1) {
        drain_frames(s);  // final pipe contents survive the process
        if (stopping || (sp::exited_cleanly(status) &&
                         slots[s].outstanding.empty())) {
          slots[s].alive = false;
          close_slot_fds(slots[s]);
        } else {
          handle_death(s, sp::describe_wait_status(status));
        }
      }
    }

    // Liveness policing: heartbeat gaps and shard deadlines.
    const std::uint64_t policed = sp::steady_now_ms();
    for (std::size_t s = 0; s < slots.size(); ++s) {
      Slot& slot = slots[s];
      if (!slot.alive) continue;
      if (sup_.heartbeat_ms > 0 &&
          policed - slot.last_frame_ms > sup_.heartbeat_ms) {
        kill_and_reap(s, "heartbeat_timeout");
        continue;
      }
      if (sup_.shard_deadline_ms > 0 && !slot.group.empty() &&
          policed - slot.group_assigned_ms > sup_.shard_deadline_ms) {
        kill_and_reap(s, "shard_deadline");
      }
    }
  }

  // Teardown: ask politely, then insist. Every result already streamed is
  // committed; workers that ignore Shutdown past the grace are SIGKILLed.
  for (Slot& slot : slots) request_shutdown(slot);
  const std::uint64_t teardown_deadline =
      sp::steady_now_ms() + sup_.shutdown_grace_ms;
  while (true) {
    bool any_live = false;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      Slot& slot = slots[s];
      if (!slot.alive) continue;
      if (slot.chan != nullptr) {
        // A remote worker acknowledges Shutdown by closing its end; there
        // is no process to reap here.
        if (!drain_frames(s)) {
          slot.alive = false;
          close_slot_fds(slot);
        } else {
          any_live = true;
        }
        continue;
      }
      if (slot.reader != nullptr && !drain_frames(s)) {
        int status = 0;
        sp::wait_blocking(slot.child.pid, status);
        slot.alive = false;
        close_slot_fds(slot);
        continue;
      }
      int status = 0;
      if (sp::try_wait(slot.child.pid, status) == 1) {
        slot.alive = false;
        close_slot_fds(slot);
        continue;
      }
      any_live = true;
    }
    if (!any_live) break;
    if (sp::steady_now_ms() >= teardown_deadline) {
      for (Slot& slot : slots) {
        if (!slot.alive) continue;
        if (slot.chan != nullptr) {
          slot.alive = false;
          close_slot_fds(slot);  // past the grace: hang up on the straggler
          continue;
        }
        ::kill(slot.child.pid, SIGKILL);
        int status = 0;
        sp::wait_blocking(slot.child.pid, status);
        slot.alive = false;
        close_slot_fds(slot);
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Connections that never finished their handshake get a door shut, not a
  // dangling socket. The listening fd stays open — the caller owns it.
  for (PendingConn& pc : pending_conns) {
    if (pc.chan != nullptr) pc.chan->close();
  }
  pending_conns.clear();

  // Shard files are fully merged into the main journal — retire them. If
  // the main journal failed mid-run they are the only durable copy of the
  // tail, so they are kept for the next resume's orphan harvest.
  if (journal != nullptr && !journal->failed()) {
    for (std::size_t s = 0; s < slots.size(); ++s) {
      const std::string shard_path = worker_shard_path(jpath, s);
      if (!shard_path.empty()) ::unlink(shard_path.c_str());
    }
  }

  // One outcome per requested fault, always: whatever was neither resumed,
  // simulated, harvested, nor poisoned comes back incomplete — the resume
  // path re-runs exactly these.
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (done[i]) continue;
    items[i].completed = false;
    items[i].mot = MotResult{};
    items[i].mot.unresolved = UnresolvedReason::Cancelled;
    if (run_baseline_) {
      items[i].baseline = BaselineResult{};
      items[i].baseline.unresolved = UnresolvedReason::Cancelled;
    }
  }

  ::sigaction(SIGPIPE, &old_pipe, nullptr);
  return items;
}

}  // namespace motsim
