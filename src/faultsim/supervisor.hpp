// Process-supervised sharded campaign runner.
//
// MotBatchRunner isolates faults from each other with a catch-all, but all
// its worker lanes share one address space: a segfault, OOM kill, or runaway
// allocation in a single fault's MOT expansion still takes down the entire
// campaign. SupervisedMotRunner is the next isolation ring — it forks N
// worker *processes*, assigns fault-group shards over the pipe protocol of
// faultsim/shard.hpp, and supervises them:
//
//  * death detection     pipe EOF, waitpid status (SIGSEGV/SIGKILL/exit
//                        code), heartbeat timeout (hung worker), and
//                        per-shard deadline (livelocked worker) all converge
//                        on the same recovery path;
//  * work requeue        a dead worker's uncommitted faults are requeued at
//                        fault-group granularity onto the survivors (work
//                        stealing); its journal shard is harvested first so
//                        results it committed but never got to stream are
//                        not re-simulated;
//  * poison quarantine   the fault that was in flight when a worker died is
//                        charged one attempt; after max_fault_attempts
//                        deaths the fault is recorded as
//                        Unresolved{EngineError} with a worker_killed_*
//                        diagnostic instead of being retried forever —
//                        exactly the in-process quarantine contract, one
//                        isolation ring further out;
//  * restart w/ backoff  dead workers are restarted under the existing
//                        RetryPolicy schedule until max_worker_restarts is
//                        spent; after that the remaining faults come back
//                        incomplete (resumable), never silently dropped.
//
// Determinism: workers are forked from the coordinator after the circuit,
// test and options are fixed, so each fault is simulated by the same
// deterministic per-fault function as the in-process path (per-fault
// reseeded selection, serial lane). Results land in the output slot of
// their fault index, so the merged vector is bit-identical to
// MotBatchRunner::run for any worker count and any kill schedule in which
// no fault is poisoned — and a poisoned fault differs only in its own slot.
//
// Journaling: with a campaign journal, every worker also appends each
// outcome to its own journal-v2 shard (<journal>.w<slot>) through the
// normal fsio layer, and the coordinator appends every record it commits to
// the main journal. Shards make worker results durable even across
// *coordinator* death: orphaned shards found at startup are merged into the
// main journal before any simulation happens.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "faultsim/batch.hpp"
#include "util/errors.hpp"

namespace motsim {

class CampaignJournal;

struct SupervisorOptions {
  /// Worker processes to fork. 0 = do not use process supervision at all
  /// (callers keep the in-process MotBatchRunner path).
  std::size_t workers = 0;

  /// A worker that produces no frame (result, fault-start, or heartbeat)
  /// for this long is presumed hung, SIGKILLed, and recovered like any
  /// other death. Workers emit heartbeats at a quarter of this period.
  /// 0 disables the timeout (and the heartbeat thread).
  std::uint64_t heartbeat_ms = 5000;

  /// Wall-clock budget for one assigned fault group (0 = unlimited). A
  /// worker that exceeds it is SIGKILLed and its uncommitted faults are
  /// requeued; the in-flight fault is charged an attempt.
  std::uint64_t shard_deadline_ms = 0;

  /// Faults per assignment group (0 = automatic; see plan_fault_groups).
  std::size_t group_size = 0;

  /// A fault whose worker dies while it is in flight is retried on another
  /// worker; after this many deaths it is recorded as a poisoned
  /// Unresolved{EngineError} outcome instead of being retried forever.
  std::size_t max_fault_attempts = 3;

  /// Total worker restarts the campaign may spend (the initial N spawns are
  /// free). When exhausted and no live worker remains, leftover faults are
  /// returned incomplete — the campaign ends resumable, not hung.
  std::size_t max_worker_restarts = 8;

  /// Backoff schedule between a worker death and its replacement's spawn
  /// (same deterministic-jitter policy the journal retries use).
  RetryPolicy restart_backoff;

  /// Grace period between asking workers to shut down (Shutdown frame) and
  /// SIGKILLing the stragglers.
  std::uint64_t shutdown_grace_ms = 5000;

  /// --- remote (multi-host) mode ----------------------------------------
  /// A bound+listening TCP socket fd. -1 (the default) keeps the local
  /// fork/pipe mode. >= 0 switches the supervisor to remote mode: no
  /// processes are forked; instead `workers` becomes the slot count and
  /// each slot is filled by a TCP worker (faultsim/remote.hpp) that
  /// connects and passes the JournalMeta handshake. Death detection
  /// (disconnect, heartbeat gap, shard deadline), work requeue, poison
  /// quarantine and the bit-identical input-order merge all carry over
  /// unchanged. The caller keeps ownership of the fd.
  int listen_fd = -1;
  /// How long the coordinator waits for the first worker to join before
  /// declaring the fleet lost (remaining faults come back incomplete).
  std::uint64_t remote_join_ms = 30000;
  /// After the last live worker disconnects, how long the coordinator holds
  /// the campaign open for a reconnect before declaring the fleet lost. A
  /// rejoin into a previously used slot consumes the max_worker_restarts
  /// budget, exactly like a local respawn.
  std::uint64_t remote_rejoin_ms = 10000;

  /// --- chaos hooks (tests only; see tests/supervisor_test.cpp) ---------
  /// Seeded kill schedule: a worker SIGKILLs itself right before simulating
  /// fault k when chaos_should_kill(seed, k, incarnation, permille). 0 = off.
  std::uint64_t chaos_kill_permille = 0;
  std::uint64_t chaos_kill_seed = 0;
  /// A fault index that deterministically SIGKILLs every worker that
  /// attempts it — the poison-fault scenario. npos = off.
  std::size_t chaos_abort_fault = static_cast<std::size_t>(-1);
};

/// What the supervision layer saw during one run. Purely diagnostic — the
/// per-fault outcomes carry all correctness-relevant state.
struct SupervisorStats {
  std::size_t worker_deaths = 0;    ///< unexpected exits (not Shutdown)
  std::size_t worker_restarts = 0;  ///< replacements spawned
  std::size_t requeued_faults = 0;  ///< stolen from dead workers
  std::size_t poisoned_faults = 0;  ///< quarantined after max_fault_attempts
  /// Faults returned incomplete because every worker died and the restart
  /// budget was spent (0 unless the campaign was lost).
  std::size_t lost_faults = 0;
  /// Records recovered by harvesting journal shards (a dead worker's
  /// committed-but-unstreamed tail, or orphans from a dead coordinator).
  std::size_t harvested_records = 0;
};

class SupervisedMotRunner {
 public:
  /// Mirrors MotBatchRunner's constructor; `sup.workers` must be >= 1.
  /// Workers run serial MotBatchRunner lanes (num_threads forced to 1 in
  /// the children) — parallelism comes from the process count.
  SupervisedMotRunner(const Circuit& c, MotOptions options, bool run_baseline,
                      SupervisorOptions sup);

  /// Same contract as MotBatchRunner::run — one item per index, input-order
  /// merge, resumed faults served from the journal, incomplete items on
  /// cancellation/deadline — plus the supervision semantics above. `stats`
  /// (optional) receives the supervision counters.
  std::vector<MotBatchItem> run(const TestSequence& test, const SeqTrace& good,
                                const std::vector<Fault>& faults,
                                std::span<const std::size_t> indices,
                                CampaignJournal* journal,
                                const CancelToken* cancel = nullptr,
                                SupervisorStats* stats = nullptr) const;

  const MotOptions& options() const { return options_; }
  const SupervisorOptions& supervisor_options() const { return sup_; }

 private:
  const Circuit* circuit_;
  MotOptions options_;
  bool run_baseline_;
  SupervisorOptions sup_;
};

/// The journal shard path of worker slot `slot` for a campaign journaled at
/// `journal_path` ("" when the campaign has no journal — workers then skip
/// shard journaling and rely on the pipe alone).
std::string worker_shard_path(const std::string& journal_path,
                              std::size_t slot);

}  // namespace motsim
