#include "faultsim/remote.hpp"

#include <poll.h>
#include <signal.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "faultsim/checkpoint.hpp"
#include "faultsim/shard.hpp"
#include "util/socket.hpp"
#include "util/subprocess.hpp"

namespace motsim {

namespace sp = subprocess;

namespace {

constexpr std::size_t kNoFault = static_cast<std::size_t>(-1);

/// Cancel-aware sleep in small poll slices (no signals: library code).
void sleep_ms(std::uint64_t ms, const CancelToken* cancel) {
  const std::uint64_t deadline = sp::steady_now_ms() + ms;
  while (sp::steady_now_ms() < deadline) {
    if (cancel != nullptr && cancel->cancelled()) return;
    const std::uint64_t left = deadline - sp::steady_now_ms();
    struct pollfd none = {-1, 0, 0};
    ::poll(&none, 0, static_cast<int>(std::min<std::uint64_t>(left, 50)));
  }
}

int poll_readable(int fd, int timeout_ms) {
  struct pollfd p = {fd, POLLIN, 0};
  while (true) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r >= 0) return r;
    if (errno == EINTR) return 0;  // let the caller re-check stop conditions
    return -1;
  }
}

/// What one connection's serve loop ended with.
enum class ConnEnd : std::uint8_t {
  Shutdown,     ///< coordinator said Shutdown: clean exit
  Lost,         ///< link died (EOF/EPIPE/corruption): reconnect, keep replay
  ChaosKilled,  ///< emulated SIGKILL: reconnect with amnesia
  Cancelled,    ///< local cancel tripped
  Rejected,     ///< coordinator sent Reject: terminal
};

}  // namespace

int serve_remote_worker(const Circuit& c, MotOptions options, bool run_baseline,
                        const TestSequence& test, const SeqTrace& good,
                        const std::vector<Fault>& faults,
                        const RemoteWorkerOptions& opts,
                        RemoteWorkerReport* report, const CancelToken* cancel) {
  RemoteWorkerReport local_report;
  if (report == nullptr) report = &local_report;
  *report = RemoteWorkerReport{};

  // Remote workers are serial lanes, exactly like forked ones: parallelism
  // is the worker count, and campaign budgets belong to the coordinator.
  MotOptions opt = options;
  opt.num_threads = 1;
  opt.campaign_time_ms = 0;
  const MotBatchRunner runner(c, opt, run_baseline);
  const JournalMeta meta =
      make_journal_meta(c.name(), faults.size(), test, opt, run_baseline);
  const std::string hello = shard::encode_hello(meta);

  // Journal records produced by this process, in production order. Replayed
  // after every reconnect; cleared only by an emulated chaos kill (a real
  // SIGKILL clears it by losing the process).
  std::vector<std::string> replay;

  RetrySchedule backoff(opts.reconnect_backoff);
  std::size_t consecutive_failures = 0;

  auto cancelled = [&] { return cancel != nullptr && cancel->cancelled(); };
  auto connect_failed = [&](const std::string& why) {
    ++consecutive_failures;
    if (consecutive_failures >= opts.max_connect_attempts) {
      report->error = why;
      return true;
    }
    sleep_ms(backoff.delay_us(consecutive_failures) / 1000, cancel);
    return false;
  };

  while (true) {
    if (cancelled()) {
      report->error = "cancelled";
      return kRemoteWorkerOk;
    }

    // ---- connect + handshake -----------------------------------------
    std::string conn_err;
    const int fd =
        netio::tcp_connect(opts.host, opts.port, opts.connect_deadline_ms,
                           conn_err);
    if (fd < 0) {
      if (connect_failed("connect: " + conn_err)) {
        return kRemoteWorkerTransportFailure;
      }
      continue;
    }
    netio::SocketChannel chan(fd);
    sp::FrameReader reader(chan);
    if (sp::write_frame(chan, static_cast<std::uint8_t>(shard::MsgType::Hello),
                        hello) != 0) {
      if (connect_failed("handshake write failed")) {
        return kRemoteWorkerTransportFailure;
      }
      continue;
    }

    shard::WelcomeInfo welcome;
    {
      const std::uint64_t deadline =
          sp::steady_now_ms() + opts.handshake_timeout_ms;
      bool have_verdict = false;
      bool ok = false;
      while (!have_verdict) {
        std::uint8_t type = 0;
        std::string payload;
        if (reader.next(type, payload)) {
          const auto mt = static_cast<shard::MsgType>(type);
          if (mt == shard::MsgType::Welcome) {
            have_verdict = true;
            ok = shard::decode_welcome(payload, welcome);
            if (!ok) report->error = "malformed welcome";
          } else if (mt == shard::MsgType::Reject) {
            // "no_free_slot" is a race, not a verdict: the coordinator has
            // not yet noticed our previous incarnation's death. Back off and
            // retry. Every other reason (wrong campaign, budget spent,
            // campaign stopping) is authoritative.
            if (payload == "no_free_slot") {
              have_verdict = false;
              report->error = "rejected: " + payload;
              break;
            }
            report->error = "rejected: " + payload;
            return kRemoteWorkerTransportFailure;
          }
          continue;  // anything else pre-welcome is ignored
        }
        if (reader.corrupt() || cancelled() ||
            sp::steady_now_ms() >= deadline) {
          break;
        }
        if (poll_readable(chan.poll_fd(), 100) < 0) break;
        int err = 0;
        const auto fs = reader.feed(err);
        if (fs == sp::FrameReader::FeedStatus::Eof ||
            fs == sp::FrameReader::FeedStatus::Error) {
          break;
        }
      }
      if (cancelled()) {
        report->error = "cancelled";
        return kRemoteWorkerOk;
      }
      if (!have_verdict || !ok) {
        if (connect_failed(report->error.empty() ? "handshake timed out"
                                                 : report->error)) {
          return kRemoteWorkerTransportFailure;
        }
        continue;
      }
    }
    consecutive_failures = 0;
    ++report->connections;

    // ---- admitted: heartbeats, replay, then serve --------------------
    std::mutex write_mu;
    auto send = [&](shard::MsgType type, std::string_view payload) {
      std::lock_guard<std::mutex> lk(write_mu);
      return sp::write_frame(chan, static_cast<std::uint8_t>(type), payload);
    };

    std::atomic<bool> stop{false};
    std::mutex hb_mu;
    std::condition_variable hb_cv;
    std::thread heartbeat;
    if (welcome.heartbeat_period_ms > 0) {
      heartbeat = std::thread([&] {
        const auto period =
            std::chrono::milliseconds(welcome.heartbeat_period_ms);
        std::unique_lock<std::mutex> lk(hb_mu);
        auto next = std::chrono::steady_clock::now() + period;
        while (!hb_cv.wait_until(lk, next, [&] {
          return stop.load(std::memory_order_relaxed);
        })) {
          if (send(shard::MsgType::Heartbeat, "") != 0) break;
          next = std::chrono::steady_clock::now() + period;
        }
      });
    }
    auto stop_heartbeat = [&] {
      {
        std::lock_guard<std::mutex> lk(hb_mu);
        stop.store(true, std::memory_order_relaxed);
      }
      hb_cv.notify_all();
      if (heartbeat.joinable()) heartbeat.join();
    };

    ConnEnd end = ConnEnd::Lost;

    // Replay first: anything this process already computed but the
    // coordinator may not have seen (the link died mid-stream). Duplicates
    // are dropped by the coordinator's idempotent commit.
    bool replay_ok = true;
    for (const std::string& record : replay) {
      if (send(shard::MsgType::FaultResult, record) != 0) {
        replay_ok = false;
        break;
      }
      ++report->replayed_records;
    }

    if (replay_ok) {
      // Blocks until a frame arrives; false = link gone.
      auto next_frame = [&](std::uint8_t& type, std::string& payload) {
        while (true) {
          if (reader.next(type, payload)) return true;
          if (reader.corrupt() || cancelled()) return false;
          if (poll_readable(chan.poll_fd(), 200) < 0) return false;
          int err = 0;
          const auto fs = reader.feed(err);
          if (fs == sp::FrameReader::FeedStatus::Eof ||
              fs == sp::FrameReader::FeedStatus::Error) {
            return false;
          }
        }
      };
      // Between-faults peek: a buffered Shutdown and a dead link are
      // different verdicts — Shutdown ends the campaign cleanly, a dead
      // link must put us back on the reconnect path with the replay log
      // intact (mistaking EOF for Shutdown strands the coordinator's
      // rejoin window, which matters most when this is the only worker).
      enum class Peek : std::uint8_t { None, Shutdown, Lost };
      auto peek_control = [&]() -> Peek {
        while (true) {
          std::uint8_t type = 0;
          std::string payload;
          if (reader.next(type, payload)) {
            if (static_cast<shard::MsgType>(type) ==
                shard::MsgType::Shutdown) {
              return Peek::Shutdown;
            }
            continue;
          }
          if (reader.corrupt()) return Peek::Lost;
          if (poll_readable(chan.poll_fd(), 0) <= 0) return Peek::None;
          int err = 0;
          const auto fs = reader.feed(err);
          if (fs == sp::FrameReader::FeedStatus::Eof ||
              fs == sp::FrameReader::FeedStatus::Error) {
            return Peek::Lost;
          }
          if (fs == sp::FrameReader::FeedStatus::WouldBlock) {
            return Peek::None;
          }
        }
      };

      bool serving = true;
      std::vector<std::size_t> group;
      while (serving) {
        std::uint8_t type = 0;
        std::string payload;
        if (!next_frame(type, payload)) {
          end = cancelled() ? ConnEnd::Cancelled : ConnEnd::Lost;
          break;
        }
        switch (static_cast<shard::MsgType>(type)) {
          case shard::MsgType::Shutdown:
            end = ConnEnd::Shutdown;
            serving = false;
            break;
          case shard::MsgType::Assign: {
            if (!shard::decode_assign(payload, group)) {
              end = ConnEnd::Lost;  // protocol violation: die visibly
              serving = false;
              break;
            }
            for (const std::size_t k : group) {
              if (cancelled()) {
                end = ConnEnd::Cancelled;
                serving = false;
                break;
              }
              const Peek peeked = peek_control();
              if (peeked != Peek::None) {
                end = peeked == Peek::Shutdown ? ConnEnd::Shutdown
                                               : ConnEnd::Lost;
                serving = false;
                break;
              }
              if (send(shard::MsgType::FaultStart,
                       shard::encode_fault_start(k)) != 0) {
                end = ConnEnd::Lost;
                serving = false;
                break;
              }
              // Chaos: die exactly where a crashing engine would — fault
              // announced, result not yet produced.
              if (k == opts.chaos_abort_fault ||
                  shard::chaos_should_kill(opts.chaos_kill_seed, k,
                                           welcome.incarnation,
                                           opts.chaos_kill_permille)) {
                if (opts.chaos_die_hard) ::raise(SIGKILL);
                end = ConnEnd::ChaosKilled;
                serving = false;
                break;
              }
              const std::size_t one[] = {k};
              const std::vector<MotBatchItem> out =
                  runner.run(test, good, faults, one);
              ++report->faults_simulated;
              const std::string record =
                  encode_journal_record(out[0], run_baseline);
              replay.push_back(record);
              if (send(shard::MsgType::FaultResult, record) != 0) {
                end = ConnEnd::Lost;
                serving = false;
                break;
              }
            }
            if (serving && send(shard::MsgType::GroupDone, "") != 0) {
              end = ConnEnd::Lost;
              serving = false;
            }
            break;
          }
          default:
            break;  // coordinator never sends other types mid-serve; ignore
        }
      }
    }

    stop_heartbeat();
    chan.close();

    switch (end) {
      case ConnEnd::Shutdown:
        report->clean_shutdown = true;
        return kRemoteWorkerOk;
      case ConnEnd::Cancelled:
        report->error = "cancelled";
        return kRemoteWorkerOk;
      case ConnEnd::ChaosKilled:
        // Emulated SIGKILL: the "process" loses everything it knew and a
        // fresh one reconnects. The coordinator sees an abrupt disconnect
        // followed by a new incarnation — indistinguishable from the real
        // signal, minus the lost test binary.
        replay.clear();
        ++report->chaos_kills;
        continue;
      case ConnEnd::Rejected:
        return kRemoteWorkerTransportFailure;
      case ConnEnd::Lost:
        if (connect_failed("connection lost")) {
          return kRemoteWorkerTransportFailure;
        }
        continue;
    }
  }
}

}  // namespace motsim
