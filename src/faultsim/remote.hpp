// Remote worker of the multi-host campaign supervisor.
//
// A distributed campaign runs one coordinator (SupervisedMotRunner with
// SupervisorOptions::listen_fd set — the `--listen` CLI mode) and any number
// of worker processes, possibly on other hosts, each running
// serve_remote_worker (`--connect`). The worker rebuilds the exact same
// deterministic pipeline the coordinator runs — circuit, test sequence,
// options — from its own flags, proves it via the JournalMeta handshake
// (shard.hpp), and then serves Assign/Shutdown frames over TCP exactly the
// way a forked pipe worker does.
//
// Robustness contract (the whole point of this layer):
//
//  * reconnect w/ backoff   a dropped connection — coordinator restart,
//                           network partition, chaos proxy sever — is
//                           weather: the worker reconnects under its
//                           RetryPolicy and re-handshakes for a fresh slot
//                           incarnation. Only a Reject (wrong campaign,
//                           restart budget spent) or an exhausted attempt
//                           budget ends the worker, with exit code 6.
//  * replay on reconnect    every journal record the worker has produced in
//                           this process is kept in an in-memory replay log
//                           and re-streamed after each reconnect. Records
//                           are deterministic bytes and the coordinator's
//                           commit is idempotent (first record per fault
//                           wins, later duplicates are dropped), so replay
//                           can only fill gaps — results that were in flight
//                           when the link died are never lost, and never
//                           double-counted.
//  * no process-level state this is library code (the chaos tests run
//                           several workers as plain threads inside one
//                           test binary): no signal handlers, no _exit, no
//                           globals. The CLI owns signals and exit codes.
//
// The chaos hooks mirror the fork-mode worker's: the seeded kill schedule
// fires at the same point (after FaultStart, before the result). With
// `chaos_die_hard` the worker raises SIGKILL for real (CLI processes); the
// in-process tests leave it false and get an *emulated* kill instead — the
// worker drops its connection, forgets its replay log (a killed process
// loses its memory), and reconnects as a fresh incarnation. Both look
// identical to the coordinator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faultsim/batch.hpp"
#include "util/errors.hpp"

namespace motsim {

struct RemoteWorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// Per-attempt connect deadline (nonblocking connect; a black-holed
  /// coordinator fails after this, never hangs the reconnect loop).
  std::uint64_t connect_deadline_ms = 5000;

  /// Consecutive failed connect/handshake attempts before the worker gives
  /// up (exit code 6). A successful handshake resets the count.
  std::size_t max_connect_attempts = 10;

  /// Backoff between reconnect attempts (deterministic-jitter policy shared
  /// with the journal and supervisor retries).
  RetryPolicy reconnect_backoff;

  /// How long to wait for the coordinator's Welcome/Reject after Hello.
  std::uint64_t handshake_timeout_ms = 10000;

  /// --- chaos hooks (tests and the chaos CLI flags) ---------------------
  std::uint64_t chaos_kill_permille = 0;
  std::uint64_t chaos_kill_seed = 0;
  std::size_t chaos_abort_fault = static_cast<std::size_t>(-1);
  /// true: a chaos kill raises SIGKILL (CLI worker processes only).
  /// false: the kill is emulated in-process — drop the connection, clear
  /// the replay log, reconnect as a fresh incarnation — so threaded tests
  /// can exercise the coordinator's death handling without losing the test
  /// process itself.
  bool chaos_die_hard = false;
};

/// What one worker did across all its connections. Diagnostic only.
struct RemoteWorkerReport {
  std::size_t connections = 0;       ///< successful handshakes (incarnations)
  std::size_t faults_simulated = 0;  ///< results computed in this process
  std::size_t replayed_records = 0;  ///< records re-streamed after reconnects
  std::size_t chaos_kills = 0;       ///< emulated chaos deaths
  bool clean_shutdown = false;       ///< ended via a Shutdown frame
  std::string error;                 ///< "" unless the return code is nonzero
};

/// Process exit codes of the worker CLI mode (tests/cli_exit_codes_test.sh).
inline constexpr int kRemoteWorkerOk = 0;
inline constexpr int kRemoteWorkerTransportFailure = 6;

/// Serves MOT fault simulation to a remote coordinator until a Shutdown
/// frame (returns kRemoteWorkerOk), the coordinator rejects or disappears
/// past the attempt budget (kRemoteWorkerTransportFailure), or `cancel`
/// trips (kRemoteWorkerOk with report->error = "cancelled"). `c`, `test`,
/// `good` and `faults` must be the same deterministic pipeline the
/// coordinator built; the handshake enforces it.
int serve_remote_worker(const Circuit& c, MotOptions options, bool run_baseline,
                        const TestSequence& test, const SeqTrace& good,
                        const std::vector<Fault>& faults,
                        const RemoteWorkerOptions& opts,
                        RemoteWorkerReport* report = nullptr,
                        const CancelToken* cancel = nullptr);

}  // namespace motsim
