#include "faultsim/conventional.hpp"

#include "sim/frame_kernel.hpp"

namespace motsim {

SeqTrace ConventionalFaultSimulator::simulate_fault(
    const TestSequence& test, const Fault& f, bool keep_lines,
    const SeqTrace* reference) const {
  const FaultView fv(*circuit_, f);
  if (kernel_ == KernelKind::SoA && reference != nullptr &&
      reference->lines.size() == test.length()) {
    return run_fault_from_reference(*circuit_, test, fv, *reference, keep_lines);
  }
  return sim_.run(test, fv, keep_lines);
}

ConvOutcome ConventionalFaultSimulator::analyze(const TestSequence& test,
                                                const SeqTrace& fault_free,
                                                const Fault& f) const {
  const SeqTrace faulty = simulate_fault(test, f, /*keep_lines=*/false,
                                         &fault_free);
  ConvOutcome out;
  out.detected = traces_conflict(fault_free, faulty);
  out.passes_c = !out.detected && passes_condition_c(fault_free, faulty);
  return out;
}

std::vector<ConvOutcome> ConventionalFaultSimulator::run(
    const TestSequence& test, const SeqTrace& fault_free,
    const std::vector<Fault>& faults) const {
  std::vector<ConvOutcome> out;
  out.reserve(faults.size());
  for (const Fault& f : faults) out.push_back(analyze(test, fault_free, f));
  return out;
}

}  // namespace motsim
