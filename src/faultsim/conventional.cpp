#include "faultsim/conventional.hpp"

namespace motsim {

ConvOutcome ConventionalFaultSimulator::analyze(const TestSequence& test,
                                                const SeqTrace& fault_free,
                                                const Fault& f) const {
  const SeqTrace faulty = simulate_fault(test, f);
  ConvOutcome out;
  out.detected = traces_conflict(fault_free, faulty);
  out.passes_c = !out.detected && passes_condition_c(fault_free, faulty);
  return out;
}

std::vector<ConvOutcome> ConventionalFaultSimulator::run(
    const TestSequence& test, const SeqTrace& fault_free,
    const std::vector<Fault>& faults) const {
  std::vector<ConvOutcome> out;
  out.reserve(faults.size());
  for (const Fault& f : faults) out.push_back(analyze(test, fault_free, f));
  return out;
}

}  // namespace motsim
