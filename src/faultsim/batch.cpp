#include "faultsim/batch.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "faultsim/checkpoint.hpp"
#include "faultsim/conventional.hpp"
#include "util/thread_pool.hpp"

namespace motsim {

std::uint64_t per_fault_selection_seed(std::uint64_t base,
                                       std::uint64_t fault_index) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (fault_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

MotBatchRunner::MotBatchRunner(const Circuit& c, MotOptions options,
                               bool run_baseline)
    : circuit_(&c),
      options_(options),
      run_baseline_(run_baseline),
      threads_(resolve_thread_count(options.num_threads)) {}

namespace {

/// Everything one worker lane owns: simulators with private scratch.
struct Lane {
  ConventionalFaultSimulator conv;
  MotFaultSimulator proposed;
  std::unique_ptr<ExpansionBaseline> baseline;

  Lane(const Circuit& c, const MotOptions& opt, bool run_baseline)
      : conv(c), proposed(c, opt) {
    if (run_baseline) baseline = std::make_unique<ExpansionBaseline>(c, opt);
  }
};

}  // namespace

std::vector<MotBatchItem> MotBatchRunner::run(
    const TestSequence& test, const SeqTrace& good,
    const std::vector<Fault>& faults, std::span<const std::size_t> indices,
    CampaignJournal* journal, const CancelToken* cancel) const {
  std::vector<MotBatchItem> items(indices.size());
  if (indices.empty()) return items;
  const std::size_t threads = std::min(threads_, indices.size());

  // Campaign-wide controls, shared by every lane. The deadline is armed
  // here, so campaign_time_ms bounds this call, not the runner's lifetime.
  // `stop` latches once any lane notices the deadline or the external token:
  // later lanes then skim their remaining faults as incomplete instead of
  // simulating them.
  const Deadline campaign = Deadline::after_ms(options_.campaign_time_ms);
  CancelToken stop;
  auto stop_requested = [&] {
    if (stop.cancelled()) return true;
    if ((cancel != nullptr && cancel->cancelled()) || campaign.expired()) {
      stop.cancel();
      return true;
    }
    return false;
  };

  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    lanes.push_back(std::make_unique<Lane>(*circuit_, options_, run_baseline_));
    lanes.back()->proposed.set_campaign(&campaign, &stop);
    if (lanes.back()->baseline) {
      lanes.back()->baseline->set_campaign(&campaign, &stop);
    }
  }

  auto simulate_range = [&](std::size_t begin, std::size_t end,
                            std::size_t lane_id) {
    Lane& lane = *lanes[lane_id];
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t k = indices[i];
      const Fault& f = faults[k];
      MotBatchItem& item = items[i];
      item.fault_index = k;
      // Resume: outcomes the journal already holds are merged, not re-run.
      if (journal != nullptr) {
        if (const MotBatchItem* done = journal->lookup(k)) {
          item = *done;
          continue;
        }
      }
      if (stop_requested()) {
        item.completed = false;
        item.mot.unresolved = UnresolvedReason::Cancelled;
        if (run_baseline_) item.baseline.unresolved = UnresolvedReason::Cancelled;
        continue;
      }
      // One conventional simulation per fault, shared by both procedures.
      SeqTrace faulty = lane.conv.simulate_fault(test, f, /*keep_lines=*/true);
      lane.proposed.reseed_selection(
          per_fault_selection_seed(options_.selection_seed, k));
      item.mot = lane.proposed.simulate_fault(test, good, f, faulty);
      if (lane.baseline) {
        lane.baseline->reseed_selection(
            per_fault_selection_seed(~options_.selection_seed, k));
        item.baseline = lane.baseline->simulate_fault(test, good, f, faulty);
      }
      // A fault whose own budget was still open but that stopped on the
      // campaign controls is incomplete — resume must re-run it.
      if (item.mot.unresolved == UnresolvedReason::Cancelled) {
        item.completed = false;
        stop.cancel();
        continue;
      }
      if (journal != nullptr) journal->append(item);
    }
  };

  if (threads <= 1) {
    simulate_range(0, indices.size(), 0);
  } else {
    ThreadPool pool(threads);
    pool.parallel_for_dynamic(indices.size(), /*grain=*/1, simulate_range);
  }
  return items;
}

std::vector<MotBatchItem> MotBatchRunner::run_all(
    const TestSequence& test, const SeqTrace& good,
    const std::vector<Fault>& faults) const {
  std::vector<std::size_t> indices(faults.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  return run(test, good, faults, indices);
}

}  // namespace motsim
