#include "faultsim/batch.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <numeric>

#include "faultsim/checkpoint.hpp"
#include "faultsim/conventional.hpp"
#include "util/errors.hpp"
#include "util/thread_pool.hpp"

namespace motsim {

const char* to_string(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::None: return "none";
    case DegradeLevel::PlainExpansion: return "plain_expansion";
    case DegradeLevel::Conventional: return "conventional";
  }
  return "?";
}

std::uint64_t per_fault_selection_seed(std::uint64_t base,
                                       std::uint64_t fault_index) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (fault_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

MotBatchRunner::MotBatchRunner(const Circuit& c, MotOptions options,
                               bool run_baseline)
    : circuit_(&c),
      options_(options),
      run_baseline_(run_baseline),
      threads_(resolve_thread_count(options.num_threads)) {}

namespace {

/// Everything one worker lane owns: simulators with private scratch.
struct Lane {
  ConventionalFaultSimulator conv;
  MotFaultSimulator proposed;
  std::unique_ptr<ExpansionBaseline> baseline;
  /// Lazily built when the degradation ladder first needs it on this lane
  /// (quarantined or budget-stopped fault with no baseline configured).
  std::unique_ptr<ExpansionBaseline> fallback;

  Lane(const Circuit& c, const MotOptions& opt, bool run_baseline)
      : conv(c, opt.kernel), proposed(c, opt) {
    if (run_baseline) baseline = std::make_unique<ExpansionBaseline>(c, opt);
  }
};

std::string exception_diagnostic(std::exception_ptr ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const std::exception& e) {
    return sanitize_token(e.what());
  } catch (...) {
    return sanitize_token("non-standard exception");
  }
}

}  // namespace

std::vector<MotBatchItem> MotBatchRunner::run(
    const TestSequence& test, const SeqTrace& good,
    const std::vector<Fault>& faults, std::span<const std::size_t> indices,
    CampaignJournal* journal, const CancelToken* cancel) const {
  std::vector<MotBatchItem> items(indices.size());
  if (indices.empty()) return items;
  const std::size_t threads = std::min(threads_, indices.size());

  // Campaign-wide controls, shared by every lane. The deadline is armed
  // here, so campaign_time_ms bounds this call, not the runner's lifetime.
  // `stop` latches once any lane notices the deadline or the external token:
  // later lanes then skim their remaining faults as incomplete instead of
  // simulating them.
  const Deadline campaign = Deadline::after_ms(options_.campaign_time_ms);
  CancelToken stop;
  auto stop_requested = [&] {
    if (stop.cancelled()) return true;
    if ((cancel != nullptr && cancel->cancelled()) || campaign.expired() ||
        (journal != nullptr && journal->failed())) {
      stop.cancel();
      return true;
    }
    return false;
  };

  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    lanes.push_back(std::make_unique<Lane>(*circuit_, options_, run_baseline_));
    lanes.back()->proposed.set_campaign(&campaign, &stop);
    if (lanes.back()->baseline) {
      lanes.back()->baseline->set_campaign(&campaign, &stop);
    }
  }

  // Bottom rung of the degradation ladder: classify from conventional
  // simulation alone. Reached only when the MOT engines failed on the fault,
  // so this re-runs the conventional analysis defensively under its own
  // catch-all (if even that fails, the item stays a bare quarantine record).
  auto classify_conventional = [&](Lane& lane, const Fault& f,
                                   MotBatchItem& item) {
    item.degrade = DegradeLevel::Conventional;
    try {
      const ConvOutcome o = lane.conv.analyze(test, good, f);
      item.mot.detected_conventional = o.detected;
      item.mot.passes_c = o.passes_c;
      if (o.detected) {
        item.mot.detected = true;
        item.mot.phase = MotPhase::Conventional;
        item.mot.unresolved = UnresolvedReason::None;
      }
    } catch (...) {
      // Keep the quarantine record as-is.
    }
  };

  // Middle rung: one plain [4]-style expansion run under a fresh per-fault
  // budget. Sound by construction — a detection is the cheaper engine's own
  // proof; anything else leaves the fault unresolved with `keep_reason`.
  auto degrade_to_plain = [&](Lane& lane, std::size_t k, const Fault& f,
                              SeqTrace* faulty, MotBatchItem& item,
                              UnresolvedReason keep_reason) {
    if (!lane.fallback) {
      lane.fallback = std::make_unique<ExpansionBaseline>(*circuit_, options_);
      lane.fallback->set_campaign(&campaign, &stop);
    }
    try {
      lane.fallback->reseed_selection(
          per_fault_selection_seed(options_.selection_seed ^ 0xdeadfa11u, k));
      const BaselineResult b =
          faulty != nullptr
              ? lane.fallback->simulate_fault(test, good, f, *faulty)
              : lane.fallback->simulate_fault(test, good, f);
      item.degrade = DegradeLevel::PlainExpansion;
      item.mot.detected_conventional = b.detected_conventional;
      item.mot.passes_c = b.passes_c;
      item.mot.expansions = b.expansions;
      item.mot.final_sequences = b.final_sequences;
      if (b.detected) {
        item.mot.detected = true;
        item.mot.phase = b.detected_conventional ? MotPhase::Conventional
                                                 : MotPhase::Expansion;
        item.mot.unresolved = UnresolvedReason::None;
      } else {
        item.mot.detected = false;
        item.mot.unresolved = keep_reason;
      }
      return true;
    } catch (...) {
      return false;
    }
  };

  auto simulate_one = [&](Lane& lane, std::size_t i, std::size_t k) {
    const Fault& f = faults[k];
    MotBatchItem& item = items[i];

    // Worker isolation: an exception anywhere in the per-fault work
    // quarantines this fault, never the shard. The conventional trace is
    // attempted first so the lower ladder rungs can reuse it.
    std::string diag;
    SeqTrace faulty;
    bool have_faulty = false;
    try {
      if (fault_hook_) fault_hook_(k);
      // When the caller's fault-free trace carries line values, the SoA
      // kernel replays it and re-evaluates only the fault's cone per frame.
      faulty = lane.conv.simulate_fault(test, f, /*keep_lines=*/true, &good);
      have_faulty = true;
      lane.proposed.reseed_selection(
          per_fault_selection_seed(options_.selection_seed, k));
      item.mot = lane.proposed.simulate_fault(test, good, f, faulty);
    } catch (...) {
      diag = exception_diagnostic(std::current_exception());
      item.mot = MotResult{};
      item.mot.unresolved = UnresolvedReason::EngineError;
    }

    if (lane.baseline) {
      if (have_faulty) {
        try {
          lane.baseline->reseed_selection(
              per_fault_selection_seed(~options_.selection_seed, k));
          item.baseline = lane.baseline->simulate_fault(test, good, f, faulty);
        } catch (...) {
          if (diag.empty()) {
            diag = exception_diagnostic(std::current_exception());
          }
          item.baseline = BaselineResult{};
          item.baseline.aborted = true;
          item.baseline.unresolved = UnresolvedReason::EngineError;
        }
      } else {
        item.baseline = BaselineResult{};
        item.baseline.aborted = true;
        item.baseline.unresolved = UnresolvedReason::EngineError;
      }
    }

    // Graceful degradation: engine errors always walk the ladder; faults
    // stopped by their own budget do so when the options opt in. Campaign
    // stops (Cancelled) are excluded — those faults are incomplete, not
    // degraded, and re-run on resume.
    const bool engine_error =
        item.mot.unresolved == UnresolvedReason::EngineError;
    const bool budget_stopped =
        item.mot.unresolved == UnresolvedReason::Deadline ||
        item.mot.unresolved == UnresolvedReason::WorkLimit;
    if (engine_error) {
      item.error = diag.empty() ? sanitize_token("engine error") : diag;
      if (!degrade_to_plain(lane, k, f, have_faulty ? &faulty : nullptr, item,
                            UnresolvedReason::EngineError)) {
        classify_conventional(lane, f, item);
      }
    } else if (budget_stopped && options_.degrade_on_budget) {
      const UnresolvedReason keep = item.mot.unresolved;
      const MotResult full = item.mot;
      if (!degrade_to_plain(lane, k, f, have_faulty ? &faulty : nullptr, item,
                            keep)) {
        item.mot = full;
      } else if (!item.mot.detected) {
        // The ladder decided nothing new: keep the richer original result
        // (counters, work_used) and just record that the rung was tried.
        const DegradeLevel tried = item.degrade;
        item.mot = full;
        item.degrade = tried;
      }
    }
  };

  auto simulate_range = [&](std::size_t begin, std::size_t end,
                            std::size_t lane_id) {
    Lane& lane = *lanes[lane_id];
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t k = indices[i];
      MotBatchItem& item = items[i];
      item.fault_index = k;
      // Resume: outcomes the journal already holds are merged, not re-run.
      if (journal != nullptr) {
        if (const MotBatchItem* done = journal->lookup(k)) {
          item = *done;
          continue;
        }
      }
      if (stop_requested()) {
        item.completed = false;
        item.mot.unresolved = UnresolvedReason::Cancelled;
        if (run_baseline_) item.baseline.unresolved = UnresolvedReason::Cancelled;
        continue;
      }
      simulate_one(lane, i, k);
      // A fault whose own budget was still open but that stopped on the
      // campaign controls is incomplete — resume must re-run it.
      if (item.mot.unresolved == UnresolvedReason::Cancelled) {
        item.completed = false;
        stop.cancel();
        continue;
      }
      if (journal != nullptr && !journal->append(item) && journal->failed()) {
        // Permanent journal loss (disk full and retries exhausted): stop the
        // campaign as a flushed, resumable cancellation rather than running
        // on for hours with nothing checkpointed. This fault's in-memory
        // result stays valid; resume re-runs it deterministically.
        stop.cancel();
      }
    }
  };

  if (threads <= 1) {
    simulate_range(0, indices.size(), 0);
  } else {
    ThreadPool pool(threads);
    pool.parallel_for_dynamic(indices.size(), /*grain=*/1, simulate_range);
  }
  return items;
}

std::vector<MotBatchItem> MotBatchRunner::run_all(
    const TestSequence& test, const SeqTrace& good,
    const std::vector<Fault>& faults) const {
  std::vector<std::size_t> indices(faults.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  return run(test, good, faults, indices);
}

}  // namespace motsim
