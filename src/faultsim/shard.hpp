// Shard protocol of the multi-process campaign runner.
//
// The supervisor (supervisor.hpp) and its forked workers speak a small
// message set over the length-prefixed frames of util/subprocess.hpp. This
// header pins down that protocol — message types, payload encodings, and
// the fault-group planner — separately from the supervision policy so the
// wire format is unit-testable without forking anything.
//
// Payloads are plain text. A FaultResult payload is *exactly* the journal-v2
// record line of the fault (encode_journal_record / decode_journal_record,
// checkpoint.hpp): the bytes a worker streams up the pipe are the bytes it
// appended to its own journal shard, so the coordinator's merge, the shard
// files, and the single-process journal all agree by construction — there
// is one serialization of a fault outcome in the system, not three.
//
// Message flow:
//
//   coordinator -> worker    Assign("k1 k2 ... kn")   one fault group
//                            Shutdown("")             finish up and exit
//   worker -> coordinator    FaultStart("k")          about to simulate k
//                            FaultResult(record)      k's journal record
//                            GroupDone("")            group finished, idle
//                            Heartbeat("")            liveness (timer thread)
//
// FaultStart is what makes worker death attributable: when a worker dies,
// the coordinator knows exactly which fault was in flight, charges the
// death to that fault alone (attempt accounting, poison after K attempts),
// and requeues the rest of the group onto survivors without penalty.
//
// Multi-host extension (TCP transport, faultsim/remote.hpp): the same
// frames, plus a three-message handshake that turns an anonymous TCP
// connection into a worker slot:
//
//   worker -> coordinator    Hello(meta)              campaign identity
//   coordinator -> worker    Welcome("slot inc hb")   admitted: slot index,
//                                                     incarnation (fencing),
//                                                     heartbeat period (ms)
//                            Reject(reason)           wrong campaign / no
//                                                     slot / budget spent
//
// Hello carries the full JournalMeta of the campaign the worker built from
// its own CLI flags; the coordinator admits only byte-equal metas, so a
// worker configured for a different circuit, sequence, or option set can
// never contribute records to this campaign. The Welcome incarnation is the
// coordinator's fencing token: the coordinator processes frames only from
// the connection it most recently welcomed into a slot, so a fenced-off
// zombie's late frames land on a closed socket, never in the merge.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "faultsim/checkpoint.hpp"

namespace motsim::shard {

enum class MsgType : std::uint8_t {
  Assign = 1,
  Shutdown = 2,
  FaultStart = 3,
  FaultResult = 4,
  GroupDone = 5,
  Heartbeat = 6,
  Hello = 7,
  Welcome = 8,
  Reject = 9,
};

const char* to_string(MsgType t);

/// Space-separated decimal fault indices ("3 17 29").
std::string encode_assign(std::span<const std::size_t> fault_indices);
/// Strict parse of an Assign payload: false on any non-numeric token,
/// overflow, or empty payload.
bool decode_assign(std::string_view payload, std::vector<std::size_t>& out);

/// Decimal fault index of a FaultStart payload.
std::string encode_fault_start(std::size_t fault_index);
bool decode_fault_start(std::string_view payload, std::size_t& out);

/// Hello payload: every JournalMeta field, space-separated decimals with the
/// circuit name last ("num_faults test_length test_hash options_hash
/// baseline circuit"). Strict decode: exactly six tokens, the name free of
/// whitespace, false on anything else.
std::string encode_hello(const JournalMeta& meta);
bool decode_hello(std::string_view payload, JournalMeta& out);

/// Welcome payload: "slot incarnation heartbeat_period_ms". The incarnation
/// is the fencing token of this admission; heartbeat_period_ms is how often
/// the coordinator expects Heartbeat frames (0 = none wanted).
struct WelcomeInfo {
  std::size_t slot = 0;
  std::size_t incarnation = 0;
  std::uint64_t heartbeat_period_ms = 0;
};
std::string encode_welcome(const WelcomeInfo& info);
bool decode_welcome(std::string_view payload, WelcomeInfo& out);

/// Splits `fault_indices` (already in campaign order) into contiguous groups
/// of `group_size` faults; group_size == 0 picks an automatic size that
/// gives each of `workers` processes several groups to claim (fine-grained
/// enough for work stealing, coarse enough to amortize the assignment round
/// trip). Order inside and across groups preserves the input order, which
/// the deterministic fault-index merge of the coordinator relies on.
std::vector<std::vector<std::size_t>> plan_fault_groups(
    std::span<const std::size_t> fault_indices, std::size_t workers,
    std::size_t group_size);

/// The deterministic chaos-kill schedule used by the kill-resilience tests:
/// true when the worker should SIGKILL itself right before simulating
/// `fault_index` in its `incarnation`-th life. Mixing the incarnation in is
/// what lets a retried fault survive on the next worker — only the
/// poison-fault tests (which bypass this and always kill) exercise the
/// K-attempts quarantine.
bool chaos_should_kill(std::uint64_t seed, std::size_t fault_index,
                       std::size_t incarnation, std::uint64_t permille);

}  // namespace motsim::shard
