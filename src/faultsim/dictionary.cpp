#include "faultsim/dictionary.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "fault/fault_view.hpp"

namespace motsim {

FaultDictionary FaultDictionary::build(const Circuit& c, const TestSequence& test,
                                       const SeqTrace& good,
                                       std::vector<Fault> faults) {
  FaultDictionary dict;
  dict.faults_ = std::move(faults);
  dict.good_outputs_ = good.outputs;
  dict.responses_.reserve(dict.faults_.size());
  dict.detected_.reserve(dict.faults_.size());

  const SequentialSimulator sim(c);
  for (const Fault& f : dict.faults_) {
    SeqTrace faulty = sim.run(test, FaultView(c, f));
    dict.detected_.push_back(traces_conflict(good, faulty) ? 1 : 0);
    dict.responses_.push_back(std::move(faulty.outputs));
  }
  return dict;
}

std::vector<std::size_t> FaultDictionary::diagnose(
    const std::vector<std::vector<Val>>& observed,
    bool* fault_free_consistent) const {
  auto consistent = [&](const std::vector<std::vector<Val>>& response) {
    assert(observed.size() == response.size());
    for (std::size_t u = 0; u < observed.size(); ++u) {
      for (std::size_t o = 0; o < observed[u].size(); ++o) {
        if (conflicts(observed[u][o], response[u][o])) return false;
      }
    }
    return true;
  };

  std::vector<std::size_t> candidates;
  for (std::size_t k = 0; k < responses_.size(); ++k) {
    if (consistent(responses_[k])) candidates.push_back(k);
  }
  if (fault_free_consistent != nullptr) {
    *fault_free_consistent = consistent(good_outputs_);
  }
  return candidates;
}

std::vector<std::vector<std::size_t>> FaultDictionary::equivalence_classes() const {
  std::map<std::string, std::vector<std::size_t>> by_signature;
  for (std::size_t k = 0; k < responses_.size(); ++k) {
    std::string sig;
    for (const auto& row : responses_[k]) {
      sig += vals_to_string(row.data(), row.size());
    }
    by_signature[sig].push_back(k);
  }
  std::vector<std::vector<std::size_t>> classes;
  classes.reserve(by_signature.size());
  for (auto& [sig, members] : by_signature) {
    (void)sig;
    classes.push_back(std::move(members));
  }
  return classes;
}

}  // namespace motsim
